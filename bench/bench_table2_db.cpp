// Table II: database benchmarks (LevelDB- and SQLite-style engines driven
// db_bench-style: 16-byte keys, 100-byte values, 4 MB write buffer).
//
// Shape expected from the paper: async fill/overwrite and sequential reads
// ~x1.0-1.6 overhead; synchronous operations ~x2.0-2.3; readseq/readreverse
// ~x0.94-1.0 (cache-served).
#include <cstdio>
#include <functional>
#include <string>

#include "bench_util.hpp"
#include "workloads/minikv.hpp"
#include "workloads/minisql.hpp"

namespace nexus::bench {
namespace {

constexpr std::size_t kKeySize = 16;
constexpr std::size_t kValueSize = 100;

Bytes MakeKey(std::uint64_t i) {
  char buf[kKeySize + 1];
  std::snprintf(buf, sizeof(buf), "%016llu", static_cast<unsigned long long>(i));
  return ToBytes(std::string_view(buf, kKeySize));
}

Bytes MakeValue(std::uint64_t i, std::size_t len = kValueSize) {
  Bytes v(len);
  std::uint64_t state = i * 6364136223846793005ull + 1;
  for (auto& b : v) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  return v;
}

struct OpResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
};

/// Formats a result the way db_bench does: MB/s for bulk ops, time/op for
/// latency-bound ops.
std::string Format(const OpResult& r, bool per_op, bool micros = false) {
  char buf[64];
  if (per_op) {
    const double per = r.seconds / static_cast<double>(r.ops);
    if (micros) {
      std::snprintf(buf, sizeof(buf), "%.2f us/op", per * 1e6);
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f ms/op", per * 1e3);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  static_cast<double>(r.bytes) / r.seconds / (1 << 20));
  }
  return buf;
}

void PrintRow(const std::string& name, const OpResult& base,
              const OpResult& nexus, bool per_op, bool micros = false) {
  const double overhead = (nexus.seconds / static_cast<double>(nexus.ops)) /
                          (base.seconds / static_cast<double>(base.ops));
  std::printf("%-14s %16s %16s %8.2fx\n", name.c_str(),
              Format(base, per_op, micros).c_str(),
              Format(nexus, per_op, micros).c_str(), overhead);
}

// ---- minikv (LevelDB) section -------------------------------------------------

struct KvBench {
  Setup& setup;
  int dir_counter = 0;

  std::string FreshDir() { return "kv" + std::to_string(dir_counter++); }

  OpResult Fill(std::uint64_t n, bool random, bool sync,
                std::size_t value_size = kValueSize,
                const std::string& reuse_dir = "") {
    const std::string dir = reuse_dir.empty() ? FreshDir() : reuse_dir;
    workloads::minikv::Options opts;
    opts.sync_writes = sync;
    auto db = workloads::minikv::DB::Open(setup.fs(), dir, opts).value();
    PhaseTimer timer(setup);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = random ? (i * 2654435761u) % n : i;
      Abort(db->Put(MakeKey(k), MakeValue(k, value_size)), "kv put");
    }
    Abort(db->Close(), "kv close");
    const auto s = timer.Stop();
    return OpResult{s.total, n, n * (kKeySize + value_size)};
  }

  OpResult ReadSeq(const std::string& dir, bool reverse) {
    auto db = workloads::minikv::DB::Open(setup.fs(), dir, {}).value();
    PhaseTimer timer(setup);
    std::uint64_t ops = 0, bytes = 0;
    auto visit = [&](ByteSpan k, ByteSpan v) {
      ++ops;
      bytes += k.size() + v.size();
    };
    Abort(reverse ? db->ScanBackward(visit) : db->ScanForward(visit), "scan");
    Abort(db->Close(), "kv close");
    const auto s = timer.Stop();
    return OpResult{s.total, ops, bytes};
  }

  OpResult ReadRandom(const std::string& dir, std::uint64_t n) {
    auto db = workloads::minikv::DB::Open(setup.fs(), dir, {}).value();
    PhaseTimer timer(setup);
    std::uint64_t found = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = (i * 2654435761u) % n;
      if (db->Get(MakeKey(k)).ok()) ++found;
    }
    Abort(db->Close(), "kv close");
    const auto s = timer.Stop();
    return OpResult{s.total, n, found * (kKeySize + kValueSize)};
  }
};

// ---- minisql (SQLite) section ---------------------------------------------------

struct SqlBench {
  Setup& setup;
  int dir_counter = 0;

  std::string FreshDir() { return "sql" + std::to_string(dir_counter++); }

  OpResult Fill(std::uint64_t n, bool random, bool sync, bool batch,
                const std::string& reuse_dir = "") {
    const std::string dir = reuse_dir.empty() ? FreshDir() : reuse_dir;
    workloads::minisql::Options opts;
    opts.sync = sync ? workloads::minisql::SyncMode::kFull
                     : workloads::minisql::SyncMode::kOff;
    auto table = workloads::minisql::Table::Open(setup.fs(), dir, opts).value();
    PhaseTimer timer(setup);
    constexpr std::uint64_t kBatchSize = 1000;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (batch && i % kBatchSize == 0) Abort(table->Begin(), "begin");
      const std::uint64_t k = random ? (i * 2654435761u) % n : i;
      Abort(table->Put(MakeKey(k), MakeValue(k)), "sql put");
      if (batch && (i % kBatchSize == kBatchSize - 1 || i == n - 1)) {
        Abort(table->Commit(), "commit");
      }
    }
    Abort(table->Close(), "sql close");
    const auto s = timer.Stop();
    return OpResult{s.total, n, n * (kKeySize + kValueSize)};
  }
};

struct Pair {
  OpResult base;
  OpResult nexus;
};

} // namespace

int Main() {
  PrintHeader("Table II: Database benchmark results");
  std::printf("%-14s %16s %16s %9s\n", "Operation", "OpenAFS", "NEXUS",
              "Overhead");

  // Fresh deployments for each system; sequence mirrors db_bench.
  auto baseline = Setup::Baseline();
  auto nexus = Setup::Nexus();
  KvBench kv_base{*baseline};
  KvBench kv_nexus{*nexus};

  std::printf("-- LevelDB-style (minikv) --\n");
  const std::uint64_t kN = 20000;

  Pair fillseq{kv_base.Fill(kN, false, false), kv_nexus.Fill(kN, false, false)};
  const std::string seq_dir_base = "kv0", seq_dir_nexus = "kv0";
  PrintRow("fillseq", fillseq.base, fillseq.nexus, false);

  Pair fillsync{kv_base.Fill(500, false, true), kv_nexus.Fill(500, false, true)};
  PrintRow("fillsync", fillsync.base, fillsync.nexus, true);

  Pair fillrandom{kv_base.Fill(kN, true, false), kv_nexus.Fill(kN, true, false)};
  PrintRow("fillrandom", fillrandom.base, fillrandom.nexus, false);

  Pair overwrite{kv_base.Fill(kN, true, false, kValueSize, seq_dir_base),
                 kv_nexus.Fill(kN, true, false, kValueSize, seq_dir_nexus)};
  PrintRow("overwrite", overwrite.base, overwrite.nexus, false);

  Pair readseq{kv_base.ReadSeq(seq_dir_base, false),
               kv_nexus.ReadSeq(seq_dir_nexus, false)};
  PrintRow("readseq", readseq.base, readseq.nexus, false);

  Pair readreverse{kv_base.ReadSeq(seq_dir_base, true),
                   kv_nexus.ReadSeq(seq_dir_nexus, true)};
  PrintRow("readreverse", readreverse.base, readreverse.nexus, false);

  Pair readrandom{kv_base.ReadRandom(seq_dir_base, kN),
                  kv_nexus.ReadRandom(seq_dir_nexus, kN)};
  PrintRow("readrandom", readrandom.base, readrandom.nexus, true, true);

  Pair fill100k{kv_base.Fill(200, false, false, 100 * 1000),
                kv_nexus.Fill(200, false, false, 100 * 1000)};
  PrintRow("fill100K", fill100k.base, fill100k.nexus, false);

  std::printf("-- SQLite-style (minisql) --\n");
  SqlBench sql_base{*baseline};
  SqlBench sql_nexus{*nexus};
  const std::uint64_t kSqlN = 5000;

  Pair sfillseq{sql_base.Fill(kSqlN, false, false, false),
                sql_nexus.Fill(kSqlN, false, false, false)};
  PrintRow("fillseq", sfillseq.base, sfillseq.nexus, false);

  Pair sfillseqsync{sql_base.Fill(300, false, true, false),
                    sql_nexus.Fill(300, false, true, false)};
  PrintRow("fillseqsync", sfillseqsync.base, sfillseqsync.nexus, true);

  Pair sfillseqbatch{sql_base.Fill(kSqlN, false, false, true),
                     sql_nexus.Fill(kSqlN, false, false, true)};
  PrintRow("fillseqbatch", sfillseqbatch.base, sfillseqbatch.nexus, false);

  Pair sfillrandom{sql_base.Fill(kSqlN, true, false, false),
                   sql_nexus.Fill(kSqlN, true, false, false)};
  PrintRow("fillrandom", sfillrandom.base, sfillrandom.nexus, false);

  Pair sfillrandsync{sql_base.Fill(300, true, true, false),
                     sql_nexus.Fill(300, true, true, false)};
  PrintRow("fillrandsync", sfillrandsync.base, sfillrandsync.nexus, true);

  Pair sfillrandbatch{sql_base.Fill(kSqlN, true, false, true),
                      sql_nexus.Fill(kSqlN, true, false, true)};
  PrintRow("fillrandbatch", sfillrandbatch.base, sfillrandbatch.nexus, false);

  // overwrite: random writes over the fillseq database.
  Pair soverwrite{sql_base.Fill(kSqlN, true, false, false, "sql0"),
                  sql_nexus.Fill(kSqlN, true, false, false, "sql0")};
  PrintRow("overwrite", soverwrite.base, soverwrite.nexus, false);

  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
