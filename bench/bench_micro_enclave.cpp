// Microbenchmarks (google-benchmark): the primitive costs behind the
// evaluation — enclave transitions, sealing, quote generation/verification,
// metadata encode/decode, chunk encryption throughput, key exchange.
#include <benchmark/benchmark.h>

#include "core/metadata_store.hpp"
#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"
#include "crypto/gcm_siv.hpp"
#include "crypto/rng.hpp"
#include "crypto/x25519.hpp"
#include "enclave/metadata_codec.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"

namespace nexus {
namespace {

struct MicroEnv {
  crypto::HmacDrbg rng{AsBytes("micro")};
  sgx::IntelAttestationService intel{AsBytes("intel")};
  std::unique_ptr<sgx::SgxCpu> cpu = intel.ProvisionCpu(AsBytes("cpu"));
  sgx::EnclaveRuntime runtime{*cpu, sgx::NexusEnclaveImage(), AsBytes("rng")};
};

MicroEnv& Env() {
  static MicroEnv env;
  return env;
}

void BM_EcallTransition(benchmark::State& state) {
  auto& rt = Env().runtime;
  for (auto _ : state) {
    sgx::EnclaveRuntime::EcallScope scope(rt);
    benchmark::DoNotOptimize(rt.ecall_count());
  }
}
BENCHMARK(BM_EcallTransition);

void BM_SealUnseal(benchmark::State& state) {
  auto& env = Env();
  const Bytes secret = env.rng.Generate(16);
  for (auto _ : state) {
    auto sealed = env.runtime.Seal(secret).value();
    auto opened = env.runtime.Unseal(sealed).value();
    benchmark::DoNotOptimize(opened);
  }
}
BENCHMARK(BM_SealUnseal);

void BM_QuoteGenerate(benchmark::State& state) {
  auto& env = Env();
  ByteArray<sgx::kReportDataSize> report{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.runtime.CreateQuote(report));
  }
}
BENCHMARK(BM_QuoteGenerate);

void BM_QuoteVerify(benchmark::State& state) {
  auto& env = Env();
  const sgx::Quote quote = env.runtime.CreateQuote({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sgx::VerifyQuote(quote, env.intel.root_public_key(),
                                              env.runtime.measurement()));
  }
}
BENCHMARK(BM_QuoteVerify);

void BM_MetadataEncode(benchmark::State& state) {
  auto& env = Env();
  const enclave::RootKey rootkey{1, 2, 3};
  const Bytes body = env.rng.Generate(static_cast<std::size_t>(state.range(0)));
  const enclave::Preamble preamble{enclave::MetaType::kDirnodeMain,
                                   env.rng.NewUuid(), 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enclave::EncodeMetadata(preamble, body, rootkey, env.rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetadataEncode)->Arg(256)->Arg(4096)->Arg(64 << 10);

void BM_MetadataDecode(benchmark::State& state) {
  auto& env = Env();
  const enclave::RootKey rootkey{1, 2, 3};
  const Bytes body = env.rng.Generate(static_cast<std::size_t>(state.range(0)));
  const enclave::Preamble preamble{enclave::MetaType::kDirnodeMain,
                                   env.rng.NewUuid(), 1};
  const Bytes blob =
      enclave::EncodeMetadata(preamble, body, rootkey, env.rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave::DecodeMetadata(
        blob, rootkey, enclave::MetaType::kDirnodeMain, preamble.uuid));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetadataDecode)->Arg(256)->Arg(4096)->Arg(64 << 10);

void BM_ChunkEncrypt1MB(benchmark::State& state) {
  auto& env = Env();
  const Bytes chunk = env.rng.Generate(1 << 20);
  const Bytes key = env.rng.Generate(16);
  const Bytes iv = env.rng.Generate(12);
  auto aes = crypto::Aes::Create(key).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmSeal(aes, iv, {}, chunk));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ChunkEncrypt1MB);

void BM_KeywrapGcmSiv(benchmark::State& state) {
  auto& env = Env();
  const Bytes rootkey = env.rng.Generate(16);
  const Bytes nonce = env.rng.Generate(12);
  const Bytes body_key = env.rng.Generate(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmSivSeal(rootkey, nonce, {}, body_key));
  }
}
BENCHMARK(BM_KeywrapGcmSiv);

void BM_X25519SharedSecret(benchmark::State& state) {
  auto& env = Env();
  const auto a = crypto::X25519ClampScalar(env.rng.Array<32>());
  const auto b_pub = crypto::X25519BasePoint(crypto::X25519ClampScalar(env.rng.Array<32>()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519(a, b_pub));
  }
}
BENCHMARK(BM_X25519SharedSecret);

} // namespace
} // namespace nexus

BENCHMARK_MAIN();
