// Ablations for the §V-B design choices:
//  1. dirnode bucket size — the paper fixes 128 entries/bucket; sweep it
//     (1 bucket == unbucketed monolithic dirnode at the high end),
//  2. in-enclave metadata caching — on vs off (dropped before every op),
//  3. chunk-granular re-encryption — ranged fsync vs whole-file rewrite,
//  4. FetchStatus revalidation under metadata locks,
//  5. metadata journal group-commit batch sizes,
//  6. parallel chunk-crypto worker counts (modeled N-core scaling),
//  7. the untrusted store in-process vs behind a loopback nexusd daemon,
//  8. remote read pipelining — RPC window widths and chunk readahead vs
//     the lock-step request/response baseline,
//  9. the client object cache — cold vs warm sequential reads and a
//     git-clone-shaped metadata workload over a loopback daemon,
// 10. connection scaling — the legacy thread-per-connection daemon vs the
//     event-driven epoll reactor at a flat thread count,
// 11. cluster scaling — quorum put/get throughput against 1/2/4 nexusd
//     shards plus the failover latency tail when a replica dies mid-run,
// 12. the streamed cluster write path — streaming vs buffered replicated
//     puts (client memory high-water), delta vs full rebalance after a
//     membership change, and the hinted-handoff repair window.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cache/cache_counters.hpp"
#include "cache/cached_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "net/net_counters.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"

namespace nexus::bench {
namespace {

// 1024 create+delete pairs in one directory, varying bucket size.
void BucketSweep() {
  PrintHeader("Ablation 1: dirnode bucket size (1024 files, create+delete)");
  std::printf("%-14s %10s %14s %12s\n", "bucket size", "total", "metadata I/O",
              "enclave");
  for (const std::uint32_t bucket : {16u, 64u, 128u, 512u, 1u << 20}) {
    enclave::VolumeConfig config;
    config.dirnode_bucket_size = bucket;
    auto setup = Setup::Nexus({}, config);
    Abort(setup->fs().Mkdir("d"), "mkdir");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1024; ++i) {
      auto f = setup->fs().Open("d/f" + std::to_string(i), vfs::OpenMode::kWrite);
      Abort(f.status(), "create");
      Abort((*f)->Close(), "close");
    }
    for (int i = 0; i < 1024; ++i) {
      Abort(setup->fs().Remove("d/f" + std::to_string(i)), "remove");
    }
    const auto s = timer.Stop();
    const std::string label =
        bucket >= (1u << 20) ? "unbucketed" : std::to_string(bucket);
    std::printf("%-14s %9.2fs %13.2fs %11.2fs\n", label.c_str(), s.total,
                s.metadata_io, s.enclave);
  }
}

// Warm path: repeated lookups with and without the decrypted metadata cache.
void CacheAblation() {
  PrintHeader("Ablation 2: in-enclave metadata cache (1000 warm lookups)");
  for (const bool cache_enabled : {true, false}) {
    auto setup = Setup::Nexus();
    Abort(setup->fs().MkdirAll("a/b/c"), "mkdir");
    Abort(setup->fs().WriteWholeFile("a/b/c/f", Bytes(1000, 1)), "write");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1000; ++i) {
      if (!cache_enabled) setup->nexus()->enclave().EcallDropCaches();
      Abort(setup->fs().Stat("a/b/c/f").status(), "stat");
    }
    const auto s = timer.Stop();
    std::printf("cache %-9s total %8.3fs   metadata I/O %8.3fs   enclave %8.3fs\n",
                cache_enabled ? "ENABLED" : "DISABLED", s.total, s.metadata_io,
                s.enclave);
  }
}

// fsync of a small append into a large file: ranged (chunk-granular)
// re-encryption vs whole-file rewrite.
void PartialEncryptAblation() {
  PrintHeader("Ablation 3: chunk-granular re-encryption (64 MB file, 100 x 1 KB appends)");
  for (const bool ranged : {true, false}) {
    auto setup = Setup::Nexus();
    Bytes content = setup->rng().Generate(64 << 20);
    Abort(setup->fs().WriteWholeFile("big", content), "seed file");

    PhaseTimer timer(*setup);
    for (int i = 0; i < 100; ++i) {
      const Bytes chunk = setup->rng().Generate(1024);
      const std::uint64_t offset = content.size();
      Append(content, chunk);
      if (ranged) {
        Abort(setup->nexus()->WriteFileRange("big", content, offset, 1024),
              "ranged write");
      } else {
        // Whole-file update: every chunk re-keyed and re-uploaded.
        Abort(setup->nexus()->WriteFile("big", content), "full write");
      }
    }
    const auto s = timer.Stop();
    std::printf("%-22s total %9.2fs   data uploaded %8.1f MB\n",
                ranged ? "ranged (chunked)" : "whole-file rewrite", s.total,
                static_cast<double>(setup->afs().stats().bytes_stored) /
                    (1 << 20));
  }
}

// Status revalidation: after taking a metadata lock the client's callback
// is broken; a cheap FetchStatus RPC revalidates the cached (already
// decrypted) dirnode. Without it, every locked update re-fetches and
// re-decrypts the whole directory — O(n^2) enclave work.
void RevalidationAblation() {
  PrintHeader("Ablation 4: FetchStatus revalidation under locks (1024 files)");
  for (const bool revalidate : {true, false}) {
    auto setup = Setup::Nexus();
    setup->afs().set_revalidation_enabled(revalidate);
    Abort(setup->fs().Mkdir("d"), "mkdir");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1024; ++i) {
      auto f = setup->fs().Open("d/f" + std::to_string(i), vfs::OpenMode::kWrite);
      Abort(f.status(), "create");
      Abort((*f)->Close(), "close");
    }
    const auto s = timer.Stop();
    std::printf("revalidation %-9s total %8.2fs   metadata I/O %7.2fs   enclave %7.2fs\n",
                revalidate ? "ENABLED" : "DISABLED", s.total, s.metadata_io,
                s.enclave);
  }
}

// Metadata journal: no journal vs per-op commit vs group commit at
// several batch sizes. Group commit amortises the journal record and —
// because the checkpoint applies each object's last-wins state once —
// collapses the O(files) dirnode rewrites into one store per batch.
void JournalBatchAblation() {
  PrintHeader("Ablation 5: metadata journal + group commit (256 file creates)");
  std::printf("%-14s %9s %10s %10s %8s %8s %8s\n", "mode", "total",
              "meta I/O", "jrnl I/O", "stores", "records", "deduped");
  struct Mode {
    const char* label;
    bool journal;
    std::size_t batch; // 0 = per-operation commit
  };
  const Mode modes[] = {
      {"journal OFF", false, 0}, {"per-op", true, 0},  {"batch 8", true, 8},
      {"batch 32", true, 32},    {"batch 128", true, 128},
      {"batch 256", true, 256},
  };
  for (const auto& mode : modes) {
    auto setup = Setup::Nexus();
    auto* nexus = setup->nexus();
    Abort(nexus->ConfigureJournal(mode.journal, 0), "configure journal");
    Abort(setup->fs().Mkdir("d"), "mkdir");
    const auto before = nexus->Profile();
    const std::uint64_t stores_before = setup->afs().stats().stores;
    PhaseTimer timer(*setup);
    for (std::size_t i = 0; i < 256; ++i) {
      if (mode.batch > 0 && i % mode.batch == 0) {
        Abort(nexus->BeginBatch(), "begin batch");
      }
      Abort(setup->fs().WriteWholeFile("d/f" + std::to_string(i),
                                       Bytes(256, 7)),
            "create");
      if (mode.batch > 0 && (i + 1) % mode.batch == 0) {
        Abort(nexus->CommitBatch(), "commit batch");
      }
    }
    const auto s = timer.Stop();
    const auto delta = nexus->Profile() - before;
    const std::uint64_t stores = setup->afs().stats().stores - stores_before;
    std::printf("%-14s %8.2fs %9.2fs %9.2fs %8llu %8llu %8llu\n", mode.label,
                s.total, s.metadata_io, delta.journal_io_seconds,
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(delta.journal.records_committed),
                static_cast<unsigned long long>(delta.journal.ops_deduped));
  }
}

// Parallel chunk-crypto engine: sweep the worker count over a Table-5a
// style sequential write + cold read of a 16 MB file (16 x 1 MB chunks).
// On core-starved hosts the engine models the saved wall time from
// per-worker CPU clocks (enclave = critical path, not sum of work), so
// the "enclave" column is the projected N-core latency; worker busy /
// critical-path seconds show where the model comes from. Results also go
// to BENCH_parallel.json for the experiment log.
void ParallelCryptoSweep() {
  constexpr std::size_t kFileBytes = 16 << 20;
  const double file_mb = static_cast<double>(kFileBytes) / (1 << 20);
  PrintHeader("Ablation 6: parallel chunk-crypto workers (16 MB sequential write + cold read)");
  std::printf("%-8s %10s %10s %10s %10s %9s %9s %11s\n", "workers", "wr total",
              "wr encl", "rd encl", "busy", "critical", "saved", "wr MB/s");

  struct Row {
    std::size_t workers;
    double write_total, write_enclave, read_enclave;
    double busy, critical, saved;
    std::uint64_t chunks, segments;
  };
  std::vector<Row> rows;

  for (const std::size_t workers : {0u, 1u, 2u, 4u, 8u}) {
    auto setup = Setup::Nexus();
    Abort(setup->nexus()->SetCryptoWorkers(workers), "set workers");
    const Bytes content = setup->rng().Generate(kFileBytes);

    const auto before = setup->nexus()->Profile();
    PhaseTimer write_timer(*setup);
    Abort(setup->nexus()->WriteFile("big", content), "write");
    const auto ws = write_timer.Stop();

    setup->FlushCaches();
    PhaseTimer read_timer(*setup);
    auto back = setup->nexus()->ReadFile("big");
    Abort(back.status(), "read");
    if (back.value() != content) {
      Abort(Error(ErrorCode::kIntegrityViolation, "readback mismatch"),
            "verify");
    }
    const auto rs = read_timer.Stop();

    const auto delta = setup->nexus()->Profile() - before;
    rows.push_back({workers, ws.total, ws.enclave, rs.enclave,
                    delta.parallel.worker_busy_seconds,
                    delta.parallel.critical_path_seconds,
                    delta.parallel.saved_seconds,
                    delta.parallel.chunks_encrypted + delta.parallel.chunks_decrypted,
                    delta.parallel.segments_streamed});
    std::printf("%-8s %9.3fs %9.3fs %9.3fs %8.3fs %8.3fs %8.3fs %10.1f\n",
                workers == 0 ? "serial" : std::to_string(workers).c_str(),
                ws.total, ws.enclave, rs.enclave,
                rows.back().busy, rows.back().critical, rows.back().saved,
                file_mb / (ws.enclave > 0 ? ws.enclave : 1e-9));
  }

  const Row* serial = &rows[0];
  const Row* four = nullptr;
  for (const Row& r : rows) {
    if (r.workers == 4) four = &r;
  }
  if (four != nullptr && four->write_enclave > 0) {
    std::printf("modeled write speedup, 4 workers vs serial: %.2fx "
                "(enclave %.3fs -> %.3fs)\n",
                serial->write_enclave / four->write_enclave,
                serial->write_enclave, four->write_enclave);
  }

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"workload\": \"table5a_seq_write_read\",\n"
                       "  \"file_mib\": %.0f,\n  \"configs\": [\n", file_mb);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "    {\"workers\": %zu, \"write_total_s\": %.6f, "
          "\"write_enclave_s\": %.6f, \"read_enclave_s\": %.6f, "
          "\"worker_busy_s\": %.6f, \"critical_path_s\": %.6f, "
          "\"saved_s\": %.6f, \"chunks\": %llu, \"segments_streamed\": %llu, "
          "\"write_mib_per_enclave_s\": %.2f}%s\n",
          r.workers, r.write_total, r.write_enclave, r.read_enclave, r.busy,
          r.critical, r.saved, static_cast<unsigned long long>(r.chunks),
          static_cast<unsigned long long>(r.segments),
          file_mb / (r.write_enclave > 0 ? r.write_enclave : 1e-9),
          i + 1 < rows.size() ? "," : "");
    }
    double speedup = 0;
    if (four != nullptr && four->write_enclave > 0) {
      speedup = serial->write_enclave / four->write_enclave;
    }
    std::fprintf(json, "  ],\n  \"write_speedup_4w_vs_serial\": %.3f\n}\n",
                 speedup);
    std::fclose(json);
    std::printf("wrote BENCH_parallel.json\n");
  }
}

// Table-5a style 16 MB write + cold read with the object store (a real
// DiskBackend in both configs) either linked in-process or served by a
// live nexusd over a loopback socket through RemoteBackend. The virtual
// clock is identical across configs, so the delta in REAL wall time is
// the protocol's added cost; NetCounters break it into RPCs, bytes and
// per-RPC latency percentiles. Emits BENCH_net.json.
void NetworkAblation() {
  constexpr std::size_t kFileBytes = 16 << 20;
  PrintHeader(
      "Ablation 7: in-process store vs nexusd over loopback (16 MB write + cold read)");

  struct Row {
    const char* config;
    double write_wall_s = 0, read_wall_s = 0;
    net::NetCounters net;
  };
  std::vector<Row> rows;

  for (const bool remote : {false, true}) {
    const std::string dir =
        std::string("bench-net-store-") + (remote ? "remote" : "local");
    std::filesystem::remove_all(dir);
    auto disk = std::make_unique<storage::DiskBackend>(
        storage::DiskBackend::Open(dir).value());

    std::unique_ptr<storage::DiskBackend> served; // daemon's store (remote)
    std::unique_ptr<net::NexusdServer> daemon;
    std::unique_ptr<storage::StorageBackend> store;
    if (remote) {
      served = std::move(disk);
      net::NexusdOptions options;
      options.workers = 8;
      daemon = net::NexusdServer::Start(*served, options).value();
      auto client = net::RemoteBackend::Connect("127.0.0.1", daemon->port());
      Abort(client.status(), "connect nexusd");
      store = std::move(client).value();
    } else {
      store = std::move(disk);
    }

    auto setup = Setup::Nexus({}, {}, std::move(store));
    const Bytes content = setup->rng().Generate(kFileBytes);
    setup->FlushCaches();
    net::ResetGlobalNetCounters(); // scope counters to the measured phase

    std::uint64_t t0 = MonotonicNanos();
    Abort(setup->nexus()->WriteFile("big", content), "write");
    const double write_wall =
        static_cast<double>(MonotonicNanos() - t0) * 1e-9;

    setup->FlushCaches();
    t0 = MonotonicNanos();
    auto back = setup->nexus()->ReadFile("big");
    Abort(back.status(), "read");
    const double read_wall = static_cast<double>(MonotonicNanos() - t0) * 1e-9;
    if (back.value() != content) {
      Abort(Error(ErrorCode::kIntegrityViolation, "readback mismatch"),
            "verify");
    }

    rows.push_back(
        {remote ? "remote" : "local", write_wall, read_wall,
         net::GlobalNetSnapshot()});
    setup.reset(); // drop pooled connections before stopping the daemon
    if (daemon) daemon->Stop();
    std::filesystem::remove_all(dir);
  }

  const Row& local = rows[0];
  const Row& over_net = rows[1];
  std::printf("%-8s %12s %12s %8s %8s %12s %10s %10s\n", "config", "write wall",
              "read wall", "rpcs", "retries", "bytes sent", "p50 ms", "p99 ms");
  for (const Row& r : rows) {
    std::printf("%-8s %11.3fs %11.3fs %8llu %8llu %12llu %10.3f %10.3f\n",
                r.config, r.write_wall_s, r.read_wall_s,
                static_cast<unsigned long long>(r.net.rpcs),
                static_cast<unsigned long long>(r.net.retries),
                static_cast<unsigned long long>(r.net.bytes_sent),
                r.net.rpc_p50_ms, r.net.rpc_p99_ms);
  }
  const double added_wall = (over_net.write_wall_s + over_net.read_wall_s) -
                            (local.write_wall_s + local.read_wall_s);
  const double per_rpc_ms =
      over_net.net.rpcs > 0
          ? added_wall * 1e3 / static_cast<double>(over_net.net.rpcs)
          : 0;
  std::printf("network overhead: %+.3fs wall over %llu rpcs (%+.3f ms/rpc)\n",
              added_wall, static_cast<unsigned long long>(over_net.net.rpcs),
              per_rpc_ms);

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": \"table5a_16mb_write_read\",\n"
                 "  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "    {\"config\": \"%s\", \"write_wall_s\": %.6f, "
          "\"read_wall_s\": %.6f, \"rpcs\": %llu, \"retries\": %llu, "
          "\"reconnects\": %llu, \"bytes_sent\": %llu, "
          "\"bytes_received\": %llu, \"rpc_p50_ms\": %.4f, "
          "\"rpc_p99_ms\": %.4f}%s\n",
          r.config, r.write_wall_s, r.read_wall_s,
          static_cast<unsigned long long>(r.net.rpcs),
          static_cast<unsigned long long>(r.net.retries),
          static_cast<unsigned long long>(r.net.reconnects),
          static_cast<unsigned long long>(r.net.bytes_sent),
          static_cast<unsigned long long>(r.net.bytes_received),
          r.net.rpc_p50_ms, r.net.rpc_p99_ms,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"added_wall_s\": %.6f,\n"
                 "  \"added_ms_per_rpc\": %.4f\n}\n",
                 added_wall, per_rpc_ms);
    std::fclose(json);
    std::printf("wrote BENCH_net.json\n");
  }
}

// Sequential read of 512 x 2 KiB objects through a loopback nexusd,
// sweeping the RPC window and toggling readahead. Loopback RTT is too
// small to differentiate the configs in wall time, so each row also
// reports a MODELED latency at a calibrated AFS-scale cost (rtt + per-op
// overhead per blocking round-trip wave, payload at wire bandwidth): a
// lock-step reader pays one wave per object, a readahead reader keeps the
// window full and pays one wave per WINDOW of objects. The window alone
// does NOT help a serial reader (the "no readahead" row models at the
// lock-step wave count) — overlap must come from speculation. Emits
// BENCH_pipeline.json; aborts unless the modeled window-16 throughput is
// at least 2x lock-step and every config returned byte-identical data.
void PipelineSweep() {
  constexpr std::size_t kObjects = 512;
  constexpr std::size_t kObjectBytes = 2048;
  // Calibrated to the AFS cost model used by the simulated store (§VI
  // scale): 0.5 ms RTT, 0.1 ms per-op service, 6 MiB/s wire bandwidth.
  constexpr double kRttSeconds = 0.0005;
  constexpr double kPerOpSeconds = 0.0001;
  constexpr double kWireBytesPerSecond = 6.0 * (1 << 20);
  const double payload_seconds =
      static_cast<double>(kObjects * kObjectBytes) / kWireBytesPerSecond;

  PrintHeader(
      "Ablation 8: remote read pipelining (512 x 2 KiB sequential Gets)");

  storage::MemBackend store;
  crypto::HmacDrbg rng(AsBytes("pipeline-sweep"));
  std::vector<std::string> names;
  std::vector<Bytes> objects;
  names.reserve(kObjects);
  objects.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    names.push_back("chunk-" + std::to_string(1000 + i));
    objects.push_back(rng.Generate(kObjectBytes));
    Abort(store.Put(names.back(), objects.back()), "seed object");
  }

  net::NexusdOptions server_options;
  server_options.workers = 8;
  server_options.rpc_workers = 8;
  auto daemon = net::NexusdServer::Start(store, server_options).value();

  struct Config {
    const char* label;
    std::size_t window;
    bool readahead;
  };
  const Config configs[] = {
      {"W=1 lock-step", 1, false},
      {"W=4 +readahead", 4, true},
      {"W=16 +readahead", 16, true},
      {"W=16 no readahead", 16, false},
  };

  struct Row {
    const Config* config;
    double wall_s = 0;
    double modeled_s = 0;
    net::NetCounters net;
    cache::CacheCounters cache;  // instance hits/waste
    std::uint64_t prefetch_issued = 0;
  };
  std::vector<Row> rows;
  std::vector<Bytes> baseline; // the lock-step row's plaintext, in order

  std::printf("%-20s %10s %12s %12s %8s %8s %8s\n", "config", "wall",
              "modeled", "modeled MB/s", "rpcs", "pf hits", "pf waste");
  for (const Config& config : configs) {
    net::RemoteBackendOptions client_options;
    client_options.rpc_window = config.window;
    client_options.max_pooled_connections = 1;
    client_options.readahead_budget_bytes = 4u << 20;
    client_options.max_inflight_prefetches = config.window;
    auto remote =
        net::RemoteBackend::Connect("127.0.0.1", daemon->port(), client_options);
    Abort(remote.status(), "connect nexusd");
    net::RemoteBackend& raw = *remote.value();
    // Readahead lands in the cache tier now: RemoteBackend only fetches
    // speculatively when a sink (the cache) is stacked on top of it.
    cache::CacheOptions cache_options;
    cache_options.mem_budget_bytes = 4u << 20;
    cache_options.ttl_ms = 600000;
    cache::CachedBackend client(std::move(remote).value(), cache_options);
    cache::ResetGlobalCacheCounters();

    std::vector<Bytes> read_back;
    read_back.reserve(kObjects);
    std::size_t prefetch_cursor = 0;
    const std::uint64_t t0 = MonotonicNanos();
    for (std::size_t i = 0; i < kObjects; ++i) {
      if (config.readahead) {
        // Keep the speculative window full ahead of the demand cursor.
        while (prefetch_cursor < kObjects &&
               prefetch_cursor < i + config.window) {
          client.Prefetch(names[prefetch_cursor++]);
        }
      }
      auto blob = client.Get(names[i]);
      Abort(blob.status(), "sequential get");
      read_back.push_back(std::move(blob).value());
    }
    const double wall = static_cast<double>(MonotonicNanos() - t0) * 1e-9;

    // One blocking wave per object for a serial reader; one per full
    // window when readahead keeps the pipe primed.
    const std::size_t wave_span = config.readahead ? config.window : 1;
    const std::size_t waves = (kObjects + wave_span - 1) / wave_span;
    const double modeled = static_cast<double>(waves) *
                               (kRttSeconds + kPerOpSeconds) +
                           payload_seconds;

    for (std::size_t i = 0; i < kObjects; ++i) {
      if (read_back[i] != objects[i]) {
        Abort(Error(ErrorCode::kIntegrityViolation,
                    "pipelined read returned different bytes"),
              config.label);
      }
    }
    if (baseline.empty()) {
      baseline = std::move(read_back);
    }

    rows.push_back({&config, wall, modeled, raw.counters(), client.counters(),
                    cache::GlobalCacheSnapshot().prefetch_issued});
    const Row& row = rows.back();
    std::printf("%-20s %9.3fs %11.4fs %12.2f %8llu %8llu %8llu\n",
                config.label, row.wall_s, row.modeled_s,
                static_cast<double>(kObjects * kObjectBytes) / (1 << 20) /
                    row.modeled_s,
                static_cast<unsigned long long>(row.net.rpcs),
                static_cast<unsigned long long>(row.cache.prefetch_hits),
                static_cast<unsigned long long>(
                    row.cache.prefetch_wasted_bytes));
  }

  const double speedup = rows[0].modeled_s / rows[2].modeled_s;
  std::printf("modeled sequential-read speedup, window 16 + readahead vs "
              "lock-step: %.2fx\n",
              speedup);
  if (speedup < 2.0) {
    Abort(Error(ErrorCode::kInternal,
                "pipelining regression: modeled W=16 speedup below 2x"),
          "pipeline sweep");
  }

  // Full-stack phase: the enclave's sequential-scan detector arms
  // PrefetchData hints that flow down to RemoteBackend::Prefetch, so a
  // cold whole-file read over the daemon exercises the real readahead
  // path end to end (and the plaintext must survive the trip).
  double enclave_wall = 0;
  net::NetCounters enclave_net;
  cache::CacheCounters enclave_cache;
  {
    storage::MemBackend enclave_store;
    auto enclave_daemon =
        net::NexusdServer::Start(enclave_store, server_options).value();
    net::RemoteBackendOptions client_options;
    client_options.rpc_window = 16;
    auto remote = net::RemoteBackend::Connect("127.0.0.1",
                                              enclave_daemon->port(),
                                              client_options);
    Abort(remote.status(), "connect nexusd");
    cache::CacheOptions cache_options;
    cache_options.mem_budget_bytes = 8u << 20;
    auto cached = std::make_unique<cache::CachedBackend>(
        std::move(remote).value(), cache_options);
    cache::CachedBackend* cache_tier = cached.get();
    auto setup = Setup::Nexus({}, {}, std::move(cached));
    const Bytes content = setup->rng().Generate(4 << 20);
    Abort(setup->nexus()->WriteFile("big", content), "write");
    setup->FlushCaches();
    // The cache tier still holds our own freshly written chunks; a COLD
    // read must re-fetch them over the wire, so drain and drop it too.
    Abort(cache_tier->Flush(), "writeback drain");
    cache_tier->DropCleanEntries();
    net::ResetGlobalNetCounters();
    cache::ResetGlobalCacheCounters();
    const std::uint64_t t0 = MonotonicNanos();
    auto back = setup->nexus()->ReadFile("big");
    Abort(back.status(), "read");
    enclave_wall = static_cast<double>(MonotonicNanos() - t0) * 1e-9;
    if (back.value() != content) {
      Abort(Error(ErrorCode::kIntegrityViolation, "readback mismatch"),
            "verify");
    }
    enclave_net = net::GlobalNetSnapshot();
    enclave_cache = cache::GlobalCacheSnapshot();
    setup.reset();
    enclave_daemon->Stop();
    std::printf("enclave cold read (4 MB, W=16): %.3fs wall, %llu rpcs, "
                "%llu prefetches issued\n",
                enclave_wall,
                static_cast<unsigned long long>(enclave_net.rpcs),
                static_cast<unsigned long long>(
                    enclave_cache.prefetch_issued));
  }
  daemon->Stop();

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": \"sequential_read_512x2KiB\",\n"
                 "  \"model\": {\"rtt_s\": %.6f, \"per_op_s\": %.6f, "
                 "\"wire_bytes_per_s\": %.0f},\n  \"configs\": [\n",
                 kRttSeconds, kPerOpSeconds, kWireBytesPerSecond);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "    {\"config\": \"%s\", \"window\": %zu, \"readahead\": %s, "
          "\"wall_s\": %.6f, \"modeled_s\": %.6f, "
          "\"modeled_mib_per_s\": %.3f, \"rpcs\": %llu, "
          "\"prefetch_issued\": %llu, \"prefetch_hits\": %llu, "
          "\"prefetch_wasted_bytes\": %llu}%s\n",
          r.config->label, r.config->window,
          r.config->readahead ? "true" : "false", r.wall_s, r.modeled_s,
          static_cast<double>(kObjects * kObjectBytes) / (1 << 20) /
              r.modeled_s,
          static_cast<unsigned long long>(r.net.rpcs),
          static_cast<unsigned long long>(r.prefetch_issued),
          static_cast<unsigned long long>(r.cache.prefetch_hits),
          static_cast<unsigned long long>(r.cache.prefetch_wasted_bytes),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"modeled_speedup_w16_vs_lockstep\": %.3f,\n"
                 "  \"enclave_cold_read\": {\"file_mib\": 4, "
                 "\"wall_s\": %.6f, \"rpcs\": %llu, "
                 "\"prefetch_issued\": %llu, \"prefetch_hits\": %llu}\n}\n",
                 speedup, enclave_wall,
                 static_cast<unsigned long long>(enclave_net.rpcs),
                 static_cast<unsigned long long>(enclave_cache.prefetch_issued),
                 static_cast<unsigned long long>(enclave_cache.prefetch_hits));
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json\n");
  }
}

// Ablation 9: the client object cache end to end over a loopback nexusd.
// Phase A re-reads a 2 MiB sequential working set cold vs warm — warm must
// cost at least 5x fewer RPCs while returning byte-identical plaintext.
// Phase B runs a git-clone-shaped metadata workload: a burst of small
// object reads (clone), a warm rescan (status), and a commit loop that
// rewrites a few hot metadata objects repeatedly so writeback coalescing
// shows up as inner Puts saved. Emits BENCH_cache.json.
void ObjectCacheAblation() {
  PrintHeader("Ablation 9: client object cache (cold vs warm over nexusd)");
  constexpr std::size_t kObjects = 256;
  constexpr std::size_t kObjectBytes = 8192;

  storage::MemBackend store;
  crypto::HmacDrbg rng(AsBytes("object-cache"));
  std::vector<std::string> names;
  std::vector<Bytes> objects;
  names.reserve(kObjects);
  objects.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    names.push_back("obj-" + std::to_string(1000 + i));
    objects.push_back(rng.Generate(kObjectBytes));
    Abort(store.Put(names.back(), objects.back()), "seed object");
  }

  net::NexusdOptions server_options;
  server_options.workers = 8;
  server_options.rpc_workers = 8;
  auto daemon = net::NexusdServer::Start(store, server_options).value();

  auto remote = net::RemoteBackend::Connect("127.0.0.1", daemon->port());
  Abort(remote.status(), "connect nexusd");
  net::RemoteBackend& raw = *remote.value();
  cache::CacheOptions cache_options;
  cache_options.mem_budget_bytes = 8u << 20;
  cache_options.ttl_ms = 600000;
  cache::CachedBackend client(std::move(remote).value(), cache_options);

  // ---- phase A: cold vs warm sequential read
  auto read_all = [&] {
    for (std::size_t i = 0; i < kObjects; ++i) {
      auto blob = client.Get(names[i]);
      Abort(blob.status(), "sequential get");
      if (blob.value() != objects[i]) {
        Abort(Error(ErrorCode::kIntegrityViolation,
                    "cached read returned different bytes"),
              names[i].c_str());
      }
    }
  };
  const std::uint64_t rpcs_base = raw.counters().rpcs;
  std::uint64_t t = MonotonicNanos();
  read_all();
  const double cold_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
  const std::uint64_t cold_rpcs = raw.counters().rpcs - rpcs_base;
  t = MonotonicNanos();
  read_all();
  const double warm_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
  const std::uint64_t warm_rpcs = raw.counters().rpcs - rpcs_base - cold_rpcs;
  const cache::CacheCounters seq = client.counters();
  const double reduction = static_cast<double>(cold_rpcs) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, warm_rpcs));
  std::printf("sequential 256 x 8 KiB: cold %.3fs / %llu rpcs, "
              "warm %.3fs / %llu rpcs (%.0fx fewer), %llu mem hits\n",
              cold_s, static_cast<unsigned long long>(cold_rpcs), warm_s,
              static_cast<unsigned long long>(warm_rpcs), reduction,
              static_cast<unsigned long long>(seq.mem_hits));
  if (cold_rpcs < 5 * std::max<std::uint64_t>(1, warm_rpcs)) {
    Abort(Error(ErrorCode::kInternal,
                "cache regression: warm re-read saved fewer than 5x rpcs"),
          "object cache");
  }

  // ---- phase B: git-clone-shaped metadata traffic
  constexpr std::size_t kMeta = 200;
  constexpr std::size_t kHot = 8;
  constexpr std::size_t kCommitRounds = 10;
  for (std::size_t i = 0; i < kMeta; ++i) {
    Abort(store.Put("meta/" + std::to_string(i), rng.Generate(256)),
          "seed metadata");
  }
  const std::uint64_t clone_base = raw.counters().rpcs;
  for (std::size_t i = 0; i < kMeta; ++i) {
    Abort(client.Get("meta/" + std::to_string(i)).status(), "clone read");
  }
  const std::uint64_t clone_rpcs = raw.counters().rpcs - clone_base;
  for (std::size_t i = 0; i < kMeta; ++i) {
    Abort(client.Get("meta/" + std::to_string(i)).status(), "status read");
  }
  const std::uint64_t status_rpcs = raw.counters().rpcs - clone_base -
                                    clone_rpcs;
  // Commit churn: every round rewrites the same few hot objects (index,
  // refs, top dirnodes); only the LAST version of each must reach the
  // store when the writeback queue drains at the end.
  const cache::CacheCounters before_commit = client.counters();
  for (std::size_t round = 0; round < kCommitRounds; ++round) {
    for (std::size_t h = 0; h < kHot; ++h) {
      Abort(client.Put("meta/" + std::to_string(h), rng.Generate(256)),
            "commit write");
    }
  }
  Abort(client.Flush(), "commit flush");
  const cache::CacheCounters after_commit = client.counters();
  const std::uint64_t flushed =
      after_commit.writeback_objects - before_commit.writeback_objects;
  const std::uint64_t commit_puts = kCommitRounds * kHot;
  std::printf("metadata: clone %llu rpcs, status %llu rpcs; commit %llu "
              "puts coalesced into %llu flushed objects\n",
              static_cast<unsigned long long>(clone_rpcs),
              static_cast<unsigned long long>(status_rpcs),
              static_cast<unsigned long long>(commit_puts),
              static_cast<unsigned long long>(flushed));
  client.DropCleanEntries();
  daemon->Stop();

  std::FILE* json = std::fopen("BENCH_cache.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n  \"workload\": \"object_cache\",\n"
        "  \"sequential_read\": {\"objects\": %zu, \"object_bytes\": %zu, "
        "\"cold_s\": %.6f, \"cold_rpcs\": %llu, \"warm_s\": %.6f, "
        "\"warm_rpcs\": %llu, \"rpc_reduction\": %.1f, "
        "\"mem_hits\": %llu, \"misses\": %llu},\n"
        "  \"metadata_clone\": {\"objects\": %zu, \"clone_rpcs\": %llu, "
        "\"status_rpcs\": %llu, \"commit_puts\": %llu, "
        "\"flushed_objects\": %llu, \"writeback_batches\": %llu}\n}\n",
        kObjects, kObjectBytes, cold_s,
        static_cast<unsigned long long>(cold_rpcs), warm_s,
        static_cast<unsigned long long>(warm_rpcs), reduction,
        static_cast<unsigned long long>(seq.mem_hits),
        static_cast<unsigned long long>(seq.misses), kMeta,
        static_cast<unsigned long long>(clone_rpcs),
        static_cast<unsigned long long>(status_rpcs),
        static_cast<unsigned long long>(commit_puts),
        static_cast<unsigned long long>(flushed),
        static_cast<unsigned long long>(after_commit.writeback_batches));
    std::fclose(json);
    std::printf("wrote BENCH_cache.json\n");
  }
}

// Ablation 10: connection scaling — thread-per-connection vs the epoll
// reactor. Phase A measures low-concurrency latency (2000 small Gets, one
// client) in both modes: the reactor must not tax the common case. Phase B
// opens idle connections in batches, probing after each batch that a fresh
// short-deadline client still gets served; the count where the probe last
// succeeded is the mode's sustained connection capacity at its (flat)
// resident thread count. The legacy mode parks one pool worker per live
// connection, so it saturates at --workers; the reactor's loop holds every
// idle socket in one thread. Emits BENCH_c10k.json; aborts if the reactor
// sustains fewer than 10x the baseline's connections.
void C10kAblation() {
  PrintHeader(
      "Ablation 10: connection scaling (thread-per-connection vs reactor)");

  // Idle sockets are cheap but each costs an fd on both ends; raise the
  // soft limit toward the hard cap so the sweep isn't fd-bound.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    rlimit raised = nofile;
    raised.rlim_cur = std::min<rlim_t>(nofile.rlim_max, 8192);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) nofile = raised;
  }
  // Both ends of every loopback connection share this process's fd table;
  // leave headroom for the daemon, probes and everything else open.
  const std::size_t fd_budget =
      nofile.rlim_cur > 512 ? (static_cast<std::size_t>(nofile.rlim_cur) - 256) / 2
                            : 128;
  const std::size_t target_conns = std::min<std::size_t>(1024, fd_budget);

  struct Row {
    const char* config;
    std::uint64_t sustained_conns = 0;
    std::uint64_t resident_threads = 0;
    double get_p50_ms = 0, get_p99_ms = 0;
    double loop_dispatch_p99_ms = 0;
    std::uint64_t arena_high_water = 0;
  };
  std::vector<Row> rows;

  for (const bool reactor : {false, true}) {
    storage::MemBackend store;
    Abort(store.Put("probe", Bytes(512, 0x5a)), "seed");
    net::NexusdOptions options;
    options.serve_mode = reactor ? net::ServeMode::kReactor
                                 : net::ServeMode::kThreadPerConnection;
    options.workers = 16; // legacy: pool workers == serviceable connections
    options.rpc_workers = 4;
    auto daemon = net::NexusdServer::Start(store, options).value();
    Row row;
    row.config = reactor ? "reactor" : "threads";

    // ---- phase A: low-concurrency latency, one lock-step client.
    {
      net::RemoteBackendOptions copts;
      copts.rpc_deadline_ms = 5000;
      auto client =
          net::RemoteBackend::Connect("127.0.0.1", daemon->port(), copts);
      Abort(client.status(), "connect");
      net::ResetGlobalNetCounters();
      for (int i = 0; i < 2000; ++i) {
        Abort(client.value()->Get("probe").status(), "latency get");
      }
      const net::NetCounters nc = net::GlobalNetSnapshot();
      row.get_p50_ms = nc.rpc_p50_ms;
      row.get_p99_ms = nc.rpc_p99_ms;
    } // client gone: its pooled connections release their workers

    // ---- phase B: idle-connection scaling with a served-probe check.
    std::vector<std::unique_ptr<net::Transport>> idle;
    idle.reserve(target_conns);
    bool capacity_hit = false;
    while (idle.size() < target_conns && !capacity_hit) {
      for (int b = 0; b < 8 && idle.size() < target_conns; ++b) {
        auto conn = net::TcpTransport::Dial("127.0.0.1", daemon->port(),
                                            /*connect_deadline_ms=*/1000,
                                            /*io_deadline_ms=*/1000);
        if (!conn.ok()) {
          capacity_hit = true;
          break;
        }
        idle.push_back(std::move(conn).value());
      }
      // The probe dials fresh and must complete a real RPC promptly; a
      // daemon whose workers are all parked by idle connections fails it.
      net::RemoteBackendOptions probe_options;
      probe_options.connect_deadline_ms = 1000;
      probe_options.rpc_deadline_ms = 1000;
      probe_options.max_attempts = 1;
      auto probe = net::RemoteBackend::Connect("127.0.0.1", daemon->port(),
                                               probe_options);
      if (!probe.ok() || !probe.value()->Get("probe").ok()) {
        capacity_hit = true;
        break;
      }
      row.sustained_conns = idle.size();
    }

    const net::ServerStats s = daemon->WireStats();
    row.resident_threads = s.resident_threads;
    row.loop_dispatch_p99_ms = s.loop_dispatch_p99_ms;
    row.arena_high_water = s.arena_slabs_high_water;
    rows.push_back(row);
    idle.clear();
    daemon->Stop();
  }

  const Row& base = rows[0];
  const Row& evented = rows[1];
  std::printf("%-8s %12s %9s %10s %10s %14s %8s\n", "config", "sustained",
              "threads", "p50 ms", "p99 ms", "loop p99 ms", "slabs");
  for (const Row& r : rows) {
    std::printf("%-8s %12llu %9llu %10.3f %10.3f %14.3f %8llu\n", r.config,
                static_cast<unsigned long long>(r.sustained_conns),
                static_cast<unsigned long long>(r.resident_threads),
                r.get_p50_ms, r.get_p99_ms, r.loop_dispatch_p99_ms,
                static_cast<unsigned long long>(r.arena_high_water));
  }
  const double conn_ratio =
      static_cast<double>(evented.sustained_conns) /
      static_cast<double>(std::max<std::uint64_t>(1, base.sustained_conns));
  const double p99_ratio =
      base.get_p99_ms > 0 ? evented.get_p99_ms / base.get_p99_ms : 1.0;
  std::printf("reactor holds %.0fx the connections at %llu threads "
              "(baseline %llu); low-concurrency p99 %.2fx baseline\n",
              conn_ratio,
              static_cast<unsigned long long>(evented.resident_threads),
              static_cast<unsigned long long>(base.resident_threads),
              p99_ratio);
  // Latency is jittery on a shared box (not gated); the structural claim —
  // an order of magnitude more connections at a flat thread count — is not.
  if (conn_ratio < 10.0) {
    Abort(Error(ErrorCode::kInternal,
                "reactor sustained fewer than 10x baseline connections"),
          "c10k");
  }

  std::FILE* json = std::fopen("BENCH_c10k.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": \"c10k_connection_scaling\",\n"
                 "  \"target_connections\": %zu,\n  \"configs\": [\n",
                 target_conns);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "    {\"config\": \"%s\", \"sustained_connections\": %llu, "
          "\"resident_threads\": %llu, \"get_p50_ms\": %.4f, "
          "\"get_p99_ms\": %.4f, \"loop_dispatch_p99_ms\": %.4f, "
          "\"arena_slabs_high_water\": %llu}%s\n",
          r.config, static_cast<unsigned long long>(r.sustained_conns),
          static_cast<unsigned long long>(r.resident_threads), r.get_p50_ms,
          r.get_p99_ms, r.loop_dispatch_p99_ms,
          static_cast<unsigned long long>(r.arena_high_water),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"connection_ratio\": %.1f,\n"
                 "  \"p99_ratio\": %.3f\n}\n",
                 conn_ratio, p99_ratio);
    std::fclose(json);
    std::printf("wrote BENCH_c10k.json\n");
  }
}

// One loopback nexusd fleet + cluster client, shared by the cluster
// ablations (11 and 12).
struct ClusterFleet {
  std::vector<std::unique_ptr<storage::MemBackend>> stores;
  std::vector<std::unique_ptr<net::NexusdServer>> servers;
  std::vector<std::uint16_t> ports;
  std::unique_ptr<cluster::ClusterBackend> cluster;

  static cluster::ShardSpec MakeSpec(std::uint16_t port) {
    return cluster::ShardSpec{
        "127.0.0.1:" + std::to_string(port),
        [port]() -> Result<std::unique_ptr<storage::StorageBackend>> {
          net::RemoteBackendOptions client;
          client.max_attempts = 2;
          client.backoff_base_ms = 1;
          client.backoff_cap_ms = 5;
          client.connect_deadline_ms = 250; // bounds the failover stall
          NEXUS_ASSIGN_OR_RETURN(auto remote, net::RemoteBackend::Connect(
                                                  "127.0.0.1", port, client));
          return std::unique_ptr<storage::StorageBackend>(std::move(remote));
        },
        [](storage::StorageBackend& b) {
          return static_cast<net::RemoteBackend&>(b).Ping();
        }};
  }

  std::uint16_t StartServer() {
    stores.push_back(std::make_unique<storage::MemBackend>());
    net::NexusdOptions options;
    options.workers = 8;
    servers.push_back(
        net::NexusdServer::Start(*stores.back(), options).value());
    ports.push_back(servers.back()->port());
    return ports.back();
  }

  explicit ClusterFleet(std::size_t shards, int reinstate_backoff_ms = 100) {
    std::vector<cluster::ShardSpec> specs;
    for (std::size_t i = 0; i < shards; ++i) {
      specs.push_back(MakeSpec(StartServer()));
    }
    cluster::ClusterOptions options;
    options.replication = std::min<std::size_t>(2, shards);
    options.eject_after = 2;
    options.reinstate_backoff_base_ms = reinstate_backoff_ms;
    options.background_rebalance = false;
    cluster =
        cluster::ClusterBackend::Create(std::move(specs), options).value();
  }

  void Kill(std::size_t i) { servers[i].reset(); }
  void RestartEmpty(std::size_t i) {
    servers[i].reset();
    stores[i] = std::make_unique<storage::MemBackend>();
    net::NexusdOptions options;
    options.workers = 8;
    options.port = ports[i];
    servers[i] = net::NexusdServer::Start(*stores[i], options).value();
  }
  /// Starts a fresh daemon and joins it to the ring (membership change).
  void AddShardToRing() {
    Abort(cluster->AddShard(MakeSpec(StartServer())), "add shard");
  }
};

// Ablation 11: the sharded nexusd cluster. Phase A measures quorum
// put/get throughput against 1, 2, and 4 loopback shards (R = min(2, N),
// majority quorums) over a 512 x 4 KiB working set — more shards spread
// both the key space and the replica fan-out. Phase B samples per-Get
// latency on a 3-shard R=2 cluster while one shard is killed mid-run: the
// before/after percentiles and the worst single stall bound the client-
// visible failover cost (first touch of a dead shard eats the connect
// timeout; after ejection the tail collapses back). Emits
// BENCH_cluster.json.
void ClusterAblation() {
  PrintHeader("Ablation 11: sharded cluster (throughput vs shards, failover tail)");
  constexpr std::size_t kObjects = 512;
  constexpr std::size_t kObjectBytes = 4096;
  const double mib = static_cast<double>(kObjects * kObjectBytes) /
                     (1024.0 * 1024.0);
  using Fleet = ClusterFleet;

  crypto::HmacDrbg rng(AsBytes("cluster-ablation"));
  std::vector<Bytes> objects;
  objects.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    objects.push_back(rng.Generate(kObjectBytes));
  }

  // ---- phase A: throughput vs shard count
  struct Row {
    std::size_t shards = 0;
    std::size_t replication = 0;
    double put_s = 0, get_s = 0;
  };
  std::vector<Row> rows;
  std::printf("%-8s %6s %12s %12s %12s %12s\n", "shards", "R", "put wall",
              "put MiB/s", "get wall", "get MiB/s");
  for (const std::size_t shards : {1u, 2u, 4u}) {
    Fleet fleet(shards);
    cluster::ClusterBackend& c = *fleet.cluster;
    std::uint64_t t = MonotonicNanos();
    for (std::size_t i = 0; i < kObjects; ++i) {
      Abort(c.Put("o" + std::to_string(i), objects[i]), "cluster put");
    }
    const double put_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
    t = MonotonicNanos();
    for (std::size_t i = 0; i < kObjects; ++i) {
      auto got = c.Get("o" + std::to_string(i));
      Abort(got.status(), "cluster get");
      if (got.value() != objects[i]) {
        Abort(Error(ErrorCode::kIntegrityViolation,
                    "cluster read returned different bytes"),
              "cluster get");
      }
    }
    const double get_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
    rows.push_back(Row{shards, c.replication(), put_s, get_s});
    std::printf("%-8zu %6zu %11.3fs %12.1f %11.3fs %12.1f\n", shards,
                c.replication(), put_s, mib / put_s, get_s, mib / get_s);
  }

  // ---- phase B: failover tail on a 3-shard R=2 cluster
  constexpr std::size_t kFailoverObjects = 128;
  constexpr std::size_t kRounds = 6;       // read sweeps over the set
  constexpr std::size_t kKillRound = 2;    // shard dies entering this sweep
  Fleet fleet(3);
  cluster::ClusterBackend& c = *fleet.cluster;
  for (std::size_t i = 0; i < kFailoverObjects; ++i) {
    Abort(c.Put("f" + std::to_string(i), objects[i]), "failover seed");
  }
  std::vector<double> before_ms, after_ms;
  for (std::size_t round = 0; round < kRounds; ++round) {
    if (round == kKillRound) fleet.Kill(1);
    for (std::size_t i = 0; i < kFailoverObjects; ++i) {
      const std::uint64_t t0 = MonotonicNanos();
      Abort(c.Get("f" + std::to_string(i)).status(), "failover get");
      const double ms = static_cast<double>(MonotonicNanos() - t0) * 1e-6;
      (round < kKillRound ? before_ms : after_ms).push_back(ms);
    }
  }
  auto percentile = [](std::vector<double> v, double p) {
    std::sort(v.begin(), v.end());
    return v[std::min(v.size() - 1,
                      static_cast<std::size_t>(p * static_cast<double>(v.size())))];
  };
  const double before_p50 = percentile(before_ms, 0.50);
  const double before_p99 = percentile(before_ms, 0.99);
  const double after_p50 = percentile(after_ms, 0.50);
  const double after_p99 = percentile(after_ms, 0.99);
  const double worst_ms = *std::max_element(after_ms.begin(), after_ms.end());
  const cluster::ClusterCounters counters = c.counters();
  std::printf("failover (3 shards, R=2, kill 1 mid-run): healthy p50 %.3f ms "
              "p99 %.3f ms; degraded p50 %.3f ms p99 %.3f ms, worst stall "
              "%.1f ms, %llu failovers, 0 failed ops\n",
              before_p50, before_p99, after_p50, after_p99, worst_ms,
              static_cast<unsigned long long>(counters.failovers));
  if (counters.quorum_failures != 0) {
    Abort(Error(ErrorCode::kInternal, "failover run lost client operations"),
          "cluster failover");
  }

  std::FILE* json = std::fopen("BENCH_cluster.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": \"cluster\",\n  \"objects\": %zu,\n"
                 "  \"object_bytes\": %zu,\n  \"throughput\": [\n",
                 kObjects, kObjectBytes);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"shards\": %zu, \"replication\": %zu, "
                   "\"put_s\": %.6f, \"put_mib_s\": %.2f, "
                   "\"get_s\": %.6f, \"get_mib_s\": %.2f}%s\n",
                   r.shards, r.replication, r.put_s, mib / r.put_s, r.get_s,
                   mib / r.get_s, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"failover\": {\"shards\": 3, \"replication\": 2, "
                 "\"healthy_p50_ms\": %.4f, \"healthy_p99_ms\": %.4f, "
                 "\"degraded_p50_ms\": %.4f, \"degraded_p99_ms\": %.4f, "
                 "\"worst_stall_ms\": %.2f, \"failovers\": %llu, "
                 "\"quorum_failures\": %llu}\n}\n",
                 before_p50, before_p99, after_p50, after_p99, worst_ms,
                 static_cast<unsigned long long>(counters.failovers),
                 static_cast<unsigned long long>(counters.quorum_failures));
    std::fclose(json);
    std::printf("wrote BENCH_cluster.json\n");
  }
}

// Ablation 12: the streamed cluster write path. Phase A races the
// buffered quorum put against the streaming fan-out across object sizes
// and reports each mode's client-side buffering high-water (the gauge the
// O(window) bound pins — the streamed put must hold only the fixed
// envelope header; sizes stop at 32 MiB, under the 64 MiB object cap).
// Phase B prices a membership change: the arc-bounded delta pass an
// AddShard queues vs the full every-shard scan, in wall time and copy/RPC
// counters. Phase C measures the repair window for writes a dead shard
// slept through: hinted-handoff drain vs a full rebalance pass. Emits
// BENCH_stream.json; aborts if the streamed put buffers more than a
// window's worth client-side.
void StreamAblation() {
  PrintHeader(
      "Ablation 12: streaming puts, delta rebalance, hinted handoff");

  // ---- phase A: streamed vs buffered put across object sizes
  constexpr std::size_t kSegment = 256 * 1024;
  crypto::HmacDrbg rng(AsBytes("stream-ablation"));
  const Bytes segment = rng.Generate(kSegment);
  struct SizeRow {
    std::size_t mib = 0;
    double buffered_s = 0, streamed_s = 0;
    unsigned long long buffered_hw = 0, streamed_hw = 0;
  };
  std::vector<SizeRow> size_rows;
  std::printf("%-10s %12s %14s %12s %14s\n", "object", "buffered",
              "buffered peak", "streamed", "streamed peak");
  for (const std::size_t mib : {1u, 8u, 32u}) {
    const std::size_t segments = mib * 1024 * 1024 / kSegment;
    SizeRow row;
    row.mib = mib;
    for (const bool streamed : {true, false}) {
      ClusterFleet fleet(3);
      cluster::ClusterBackend& c = *fleet.cluster;
      const std::uint64_t t0 = MonotonicNanos();
      auto stream = streamed ? c.OpenUnbufferedPutStream("obj")
                             : c.OpenPutStream("obj");
      Abort(stream.status(), "open put stream");
      for (std::size_t s = 0; s < segments; ++s) {
        Abort((*stream)->Append(segment), "append");
      }
      Abort((*stream)->Commit(), "commit");
      const double wall =
          static_cast<double>(MonotonicNanos() - t0) * 1e-9;
      const unsigned long long high_water =
          c.counters().stream_put_buffered_high_water_bytes;
      if (c.counters().quorum_failures != 0) {
        Abort(Error(ErrorCode::kInternal, "streamed put lost quorum"),
              "stream put");
      }
      (streamed ? row.streamed_s : row.buffered_s) = wall;
      (streamed ? row.streamed_hw : row.buffered_hw) = high_water;
    }
    std::printf("%3zu MiB    %10.3fs %13lluB %10.3fs %13lluB\n", mib,
                row.buffered_s, row.buffered_hw, row.streamed_s,
                row.streamed_hw);
    size_rows.push_back(row);
  }
  for (const SizeRow& row : size_rows) {
    // The acceptance bound: the streamed path's client-side buffering is
    // the envelope header, not the object — reject anything past a frame.
    if (row.streamed_hw > 4096) {
      Abort(Error(ErrorCode::kInternal,
                  "streamed put buffered O(object) client-side"),
            "stream high-water");
    }
  }

  // ---- phase B: rebalance cost after AddShard — delta pass vs full scan
  constexpr std::size_t kRebalanceObjects = 512;
  ClusterFleet grow(4);
  {
    cluster::ClusterBackend& c = *grow.cluster;
    const Bytes small = rng.Generate(4096);
    for (std::size_t i = 0; i < kRebalanceObjects; ++i) {
      Abort(c.Put("o" + std::to_string(i), small), "rebalance seed");
    }
    grow.AddShardToRing();
  }
  cluster::ClusterBackend& gc = *grow.cluster;
  const cluster::ClusterCounters before_delta = gc.counters();
  std::uint64_t t = MonotonicNanos();
  gc.RebalanceNow(); // consumes the queued membership delta
  const double delta_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
  const cluster::ClusterCounters delta_pass =
      gc.counters() - before_delta;
  const cluster::ClusterCounters before_full = gc.counters();
  t = MonotonicNanos();
  gc.RebalanceNow(); // no pending delta: full every-shard scan
  const double full_s = static_cast<double>(MonotonicNanos() - t) * 1e-9;
  const cluster::ClusterCounters full_pass = gc.counters() - before_full;
  const double moved_fraction =
      static_cast<double>(delta_pass.rebalance_objects_moved) /
      static_cast<double>(kRebalanceObjects);
  std::printf("rebalance after +1 shard (512 x 4 KiB): delta pass %.3fs "
              "(%llu scanned, %llu moved = %.1f%% of ring, %llu KiB, "
              "%llu rpcs); full pass %.3fs (%llu scanned, %llu rpcs)\n",
              delta_s,
              static_cast<unsigned long long>(
                  delta_pass.rebalance_objects_scanned),
              static_cast<unsigned long long>(
                  delta_pass.rebalance_objects_moved),
              100.0 * moved_fraction,
              static_cast<unsigned long long>(
                  delta_pass.rebalance_bytes_moved / 1024),
              static_cast<unsigned long long>(delta_pass.shard_rpcs), full_s,
              static_cast<unsigned long long>(
                  full_pass.rebalance_objects_scanned),
              static_cast<unsigned long long>(full_pass.shard_rpcs));

  // ---- phase C: repair window for slid-past writes — handoff vs full
  constexpr std::size_t kRepairObjects = 128;
  struct RepairRow {
    double wall_s = 0;
    unsigned long long rpcs = 0, replayed = 0, moved = 0;
  };
  RepairRow with_handoff, without_handoff;
  for (const bool handoff : {true, false}) {
    ClusterFleet fleet(3, /*reinstate_backoff_ms=*/10);
    cluster::ClusterBackend& c = *fleet.cluster;
    const Bytes small = rng.Generate(4096);
    fleet.Kill(1);
    for (std::size_t i = 0; i < kRepairObjects; ++i) {
      Abort(c.Put("r" + std::to_string(i), small), "repair seed");
    }
    fleet.RestartEmpty(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const cluster::ClusterCounters before = c.counters();
    const std::uint64_t t0 = MonotonicNanos();
    if (handoff) {
      c.DrainHandoffNow();
    } else {
      c.RebalanceNow();
    }
    const double wall = static_cast<double>(MonotonicNanos() - t0) * 1e-9;
    const cluster::ClusterCounters d = c.counters() - before;
    RepairRow& row = handoff ? with_handoff : without_handoff;
    row.wall_s = wall;
    row.rpcs = d.shard_rpcs;
    row.replayed = d.handoff_hints_replayed;
    row.moved = d.rebalance_objects_moved;
  }
  std::printf("repair window (128 writes past a dead shard): handoff drain "
              "%.3fs (%llu replayed, %llu rpcs); full rebalance %.3fs "
              "(%llu moved, %llu rpcs)\n",
              with_handoff.wall_s, with_handoff.replayed, with_handoff.rpcs,
              without_handoff.wall_s, without_handoff.moved,
              without_handoff.rpcs);

  std::FILE* json = std::fopen("BENCH_stream.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": \"stream\",\n  \"segment_bytes\": %zu,\n"
                 "  \"put\": [\n",
                 kSegment);
    for (std::size_t i = 0; i < size_rows.size(); ++i) {
      const SizeRow& r = size_rows[i];
      const double object_mib = static_cast<double>(r.mib);
      std::fprintf(
          json,
          "    {\"object_mib\": %zu, \"buffered_s\": %.6f, "
          "\"buffered_mib_s\": %.2f, \"buffered_high_water_bytes\": %llu, "
          "\"streamed_s\": %.6f, \"streamed_mib_s\": %.2f, "
          "\"streamed_high_water_bytes\": %llu}%s\n",
          r.mib, r.buffered_s, object_mib / r.buffered_s, r.buffered_hw,
          r.streamed_s, object_mib / r.streamed_s, r.streamed_hw,
          i + 1 < size_rows.size() ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n  \"rebalance\": {\"objects\": %zu, \"delta\": "
        "{\"wall_s\": %.6f, \"scanned\": %llu, \"moved\": %llu, "
        "\"moved_fraction\": %.4f, \"bytes_moved\": %llu, "
        "\"shard_rpcs\": %llu}, \"full\": {\"wall_s\": %.6f, "
        "\"scanned\": %llu, \"shard_rpcs\": %llu}},\n",
        kRebalanceObjects, delta_s,
        static_cast<unsigned long long>(
            delta_pass.rebalance_objects_scanned),
        static_cast<unsigned long long>(delta_pass.rebalance_objects_moved),
        moved_fraction,
        static_cast<unsigned long long>(delta_pass.rebalance_bytes_moved),
        static_cast<unsigned long long>(delta_pass.shard_rpcs), full_s,
        static_cast<unsigned long long>(full_pass.rebalance_objects_scanned),
        static_cast<unsigned long long>(full_pass.shard_rpcs));
    std::fprintf(
        json,
        "  \"repair\": {\"objects\": %zu, \"with_handoff\": "
        "{\"wall_s\": %.6f, \"replayed\": %llu, \"shard_rpcs\": %llu}, "
        "\"without_handoff\": {\"wall_s\": %.6f, \"moved\": %llu, "
        "\"shard_rpcs\": %llu}}\n}\n",
        kRepairObjects, with_handoff.wall_s, with_handoff.replayed,
        with_handoff.rpcs, without_handoff.wall_s, without_handoff.moved,
        without_handoff.rpcs);
    std::fclose(json);
    std::printf("wrote BENCH_stream.json\n");
  }
}

} // namespace

int Main() {
  BucketSweep();
  CacheAblation();
  PartialEncryptAblation();
  RevalidationAblation();
  JournalBatchAblation();
  ParallelCryptoSweep();
  NetworkAblation();
  PipelineSweep();
  ObjectCacheAblation();
  C10kAblation();
  ClusterAblation();
  StreamAblation();
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
