// Ablations for the §V-B design choices:
//  1. dirnode bucket size — the paper fixes 128 entries/bucket; sweep it
//     (1 bucket == unbucketed monolithic dirnode at the high end),
//  2. in-enclave metadata caching — on vs off (dropped before every op),
//  3. chunk-granular re-encryption — ranged fsync vs whole-file rewrite.
#include <cstdio>
#include <cstdint>
#include <string>

#include "bench_util.hpp"

namespace nexus::bench {
namespace {

// 1024 create+delete pairs in one directory, varying bucket size.
void BucketSweep() {
  PrintHeader("Ablation 1: dirnode bucket size (1024 files, create+delete)");
  std::printf("%-14s %10s %14s %12s\n", "bucket size", "total", "metadata I/O",
              "enclave");
  for (const std::uint32_t bucket : {16u, 64u, 128u, 512u, 1u << 20}) {
    enclave::VolumeConfig config;
    config.dirnode_bucket_size = bucket;
    auto setup = Setup::Nexus({}, config);
    Abort(setup->fs().Mkdir("d"), "mkdir");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1024; ++i) {
      auto f = setup->fs().Open("d/f" + std::to_string(i), vfs::OpenMode::kWrite);
      Abort(f.status(), "create");
      Abort((*f)->Close(), "close");
    }
    for (int i = 0; i < 1024; ++i) {
      Abort(setup->fs().Remove("d/f" + std::to_string(i)), "remove");
    }
    const auto s = timer.Stop();
    const std::string label =
        bucket >= (1u << 20) ? "unbucketed" : std::to_string(bucket);
    std::printf("%-14s %9.2fs %13.2fs %11.2fs\n", label.c_str(), s.total,
                s.metadata_io, s.enclave);
  }
}

// Warm path: repeated lookups with and without the decrypted metadata cache.
void CacheAblation() {
  PrintHeader("Ablation 2: in-enclave metadata cache (1000 warm lookups)");
  for (const bool cache_enabled : {true, false}) {
    auto setup = Setup::Nexus();
    Abort(setup->fs().MkdirAll("a/b/c"), "mkdir");
    Abort(setup->fs().WriteWholeFile("a/b/c/f", Bytes(1000, 1)), "write");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1000; ++i) {
      if (!cache_enabled) setup->nexus()->enclave().EcallDropCaches();
      Abort(setup->fs().Stat("a/b/c/f").status(), "stat");
    }
    const auto s = timer.Stop();
    std::printf("cache %-9s total %8.3fs   metadata I/O %8.3fs   enclave %8.3fs\n",
                cache_enabled ? "ENABLED" : "DISABLED", s.total, s.metadata_io,
                s.enclave);
  }
}

// fsync of a small append into a large file: ranged (chunk-granular)
// re-encryption vs whole-file rewrite.
void PartialEncryptAblation() {
  PrintHeader("Ablation 3: chunk-granular re-encryption (64 MB file, 100 x 1 KB appends)");
  for (const bool ranged : {true, false}) {
    auto setup = Setup::Nexus();
    Bytes content = setup->rng().Generate(64 << 20);
    Abort(setup->fs().WriteWholeFile("big", content), "seed file");

    PhaseTimer timer(*setup);
    for (int i = 0; i < 100; ++i) {
      const Bytes chunk = setup->rng().Generate(1024);
      const std::uint64_t offset = content.size();
      Append(content, chunk);
      if (ranged) {
        Abort(setup->nexus()->WriteFileRange("big", content, offset, 1024),
              "ranged write");
      } else {
        // Whole-file update: every chunk re-keyed and re-uploaded.
        Abort(setup->nexus()->WriteFile("big", content), "full write");
      }
    }
    const auto s = timer.Stop();
    std::printf("%-22s total %9.2fs   data uploaded %8.1f MB\n",
                ranged ? "ranged (chunked)" : "whole-file rewrite", s.total,
                static_cast<double>(setup->afs().stats().bytes_stored) /
                    (1 << 20));
  }
}

// Status revalidation: after taking a metadata lock the client's callback
// is broken; a cheap FetchStatus RPC revalidates the cached (already
// decrypted) dirnode. Without it, every locked update re-fetches and
// re-decrypts the whole directory — O(n^2) enclave work.
void RevalidationAblation() {
  PrintHeader("Ablation 4: FetchStatus revalidation under locks (1024 files)");
  for (const bool revalidate : {true, false}) {
    auto setup = Setup::Nexus();
    setup->afs().set_revalidation_enabled(revalidate);
    Abort(setup->fs().Mkdir("d"), "mkdir");
    PhaseTimer timer(*setup);
    for (int i = 0; i < 1024; ++i) {
      auto f = setup->fs().Open("d/f" + std::to_string(i), vfs::OpenMode::kWrite);
      Abort(f.status(), "create");
      Abort((*f)->Close(), "close");
    }
    const auto s = timer.Stop();
    std::printf("revalidation %-9s total %8.2fs   metadata I/O %7.2fs   enclave %7.2fs\n",
                revalidate ? "ENABLED" : "DISABLED", s.total, s.metadata_io,
                s.enclave);
  }
}

// Metadata journal: no journal vs per-op commit vs group commit at
// several batch sizes. Group commit amortises the journal record and —
// because the checkpoint applies each object's last-wins state once —
// collapses the O(files) dirnode rewrites into one store per batch.
void JournalBatchAblation() {
  PrintHeader("Ablation 5: metadata journal + group commit (256 file creates)");
  std::printf("%-14s %9s %10s %10s %8s %8s %8s\n", "mode", "total",
              "meta I/O", "jrnl I/O", "stores", "records", "deduped");
  struct Mode {
    const char* label;
    bool journal;
    std::size_t batch; // 0 = per-operation commit
  };
  const Mode modes[] = {
      {"journal OFF", false, 0}, {"per-op", true, 0},  {"batch 8", true, 8},
      {"batch 32", true, 32},    {"batch 128", true, 128},
      {"batch 256", true, 256},
  };
  for (const auto& mode : modes) {
    auto setup = Setup::Nexus();
    auto* nexus = setup->nexus();
    Abort(nexus->ConfigureJournal(mode.journal, 0), "configure journal");
    Abort(setup->fs().Mkdir("d"), "mkdir");
    const auto before = nexus->Profile();
    const std::uint64_t stores_before = setup->afs().stats().stores;
    PhaseTimer timer(*setup);
    for (std::size_t i = 0; i < 256; ++i) {
      if (mode.batch > 0 && i % mode.batch == 0) {
        Abort(nexus->BeginBatch(), "begin batch");
      }
      Abort(setup->fs().WriteWholeFile("d/f" + std::to_string(i),
                                       Bytes(256, 7)),
            "create");
      if (mode.batch > 0 && (i + 1) % mode.batch == 0) {
        Abort(nexus->CommitBatch(), "commit batch");
      }
    }
    const auto s = timer.Stop();
    const auto delta = nexus->Profile() - before;
    const std::uint64_t stores = setup->afs().stats().stores - stores_before;
    std::printf("%-14s %8.2fs %9.2fs %9.2fs %8llu %8llu %8llu\n", mode.label,
                s.total, s.metadata_io, delta.journal_io_seconds,
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(delta.journal.records_committed),
                static_cast<unsigned long long>(delta.journal.ops_deduped));
  }
}

} // namespace

int Main() {
  BucketSweep();
  CacheAblation();
  PartialEncryptAblation();
  RevalidationAblation();
  JournalBatchAblation();
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
