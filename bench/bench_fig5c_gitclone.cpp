// Fig. 5c: latency of cloning repositories (redis / julia / nodejs).
//
// A clone's filesystem work is checking the tree out through the mount; we
// generate synthetic trees matching the repos' published shapes (file
// counts 618 / 1096 / 19912; nodejs depth 13 with hot directories).
//
//   Paper: redis x2.39, julia x2.87, nodejs x3.64 overhead.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/treegen.hpp"

namespace nexus::bench {
namespace {

// A clone is one logical transaction: with `batched` the whole checkout
// rides a single BeginBatch/CommitBatch group commit (one journal record,
// one checkpoint), instead of the default per-operation commit.
double RunClone(Setup& setup, const workloads::TreeSpec& spec, bool batched) {
  Abort(setup.fs().Mkdir(spec.name), "mkdir");
  PhaseTimer timer(setup);
  if (batched) Abort(setup.fs().BeginBatch(), "begin batch");
  auto stats = workloads::GenerateTree(setup.fs(), spec.name, spec, setup.rng());
  Abort(stats.status(), "treegen");
  if (batched) Abort(setup.fs().CommitBatch(), "commit batch");
  return timer.Stop().total;
}

} // namespace

int Main() {
  PrintHeader("Fig. 5c: Latency (seconds) for cloning Git repositories");
  std::printf("%-10s %10s %10s %10s %10s %10s   %s\n", "repo", "openafs",
              "nexus", "overhead", "batched", "overhead",
              "(paper: redis x2.39, julia x2.87, nodejs x3.64)");

  for (const auto& spec : {workloads::RedisSpec(), workloads::JuliaSpec(),
                           workloads::NodeJsSpec()}) {
    double openafs = 0;
    {
      auto baseline = Setup::Baseline();
      openafs = RunClone(*baseline, spec, /*batched=*/false);
    }
    double nexus = 0;
    {
      auto setup = Setup::Nexus();
      nexus = RunClone(*setup, spec, /*batched=*/false);
    }
    double batched = 0;
    core::JournalCounters journal;
    {
      auto setup = Setup::Nexus();
      Abort(setup->nexus()->ConfigureJournal(true, 0), "configure journal");
      batched = RunClone(*setup, spec, /*batched=*/true);
      journal = setup->nexus()->Profile().journal;
    }
    std::printf("%-10s %10.2f %10.2f %9.2fx %10.2f %9.2fx   "
                "(%llu records, %llu checkpoints, %llu ops deduped)\n",
                spec.name.c_str(), openafs, nexus, nexus / openafs, batched,
                batched / openafs,
                static_cast<unsigned long long>(journal.records_committed),
                static_cast<unsigned long long>(journal.checkpoints),
                static_cast<unsigned long long>(journal.ops_deduped));
  }
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
