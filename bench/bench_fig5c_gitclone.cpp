// Fig. 5c: latency of cloning repositories (redis / julia / nodejs).
//
// A clone's filesystem work is checking the tree out through the mount; we
// generate synthetic trees matching the repos' published shapes (file
// counts 618 / 1096 / 19912; nodejs depth 13 with hot directories).
//
//   Paper: redis x2.39, julia x2.87, nodejs x3.64 overhead.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/treegen.hpp"

namespace nexus::bench {
namespace {

double RunClone(Setup& setup, const workloads::TreeSpec& spec) {
  Abort(setup.fs().Mkdir(spec.name), "mkdir");
  PhaseTimer timer(setup);
  auto stats = workloads::GenerateTree(setup.fs(), spec.name, spec, setup.rng());
  Abort(stats.status(), "treegen");
  return timer.Stop().total;
}

} // namespace

int Main() {
  PrintHeader("Fig. 5c: Latency (seconds) for cloning Git repositories");
  std::printf("%-10s %10s %10s %10s   %s\n", "repo", "openafs", "nexus",
              "overhead", "(paper: redis x2.39, julia x2.87, nodejs x3.64)");

  for (const auto& spec : {workloads::RedisSpec(), workloads::JuliaSpec(),
                           workloads::NodeJsSpec()}) {
    double openafs = 0;
    {
      auto baseline = Setup::Baseline();
      openafs = RunClone(*baseline, spec);
    }
    double nexus = 0;
    {
      auto setup = Setup::Nexus();
      nexus = RunClone(*setup, spec);
    }
    std::printf("%-10s %10.2f %10.2f %9.2fx\n", spec.name.c_str(), openafs,
                nexus, nexus / openafs);
  }
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
