// Shared benchmark scaffolding: paired OpenAFS-baseline / NEXUS setups on
// identical cost models, a timer combining real compute and virtual I/O
// time, and paper-style table printing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "core/nexus_client.hpp"
#include "core/user_key.hpp"
#include "crypto/rng.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "storage/afs.hpp"
#include "storage/backend.hpp"
#include "trace/trace.hpp"
#include "vfs/afs_passthrough_fs.hpp"
#include "vfs/nexus_fs.hpp"

namespace nexus::bench {

/// One measured deployment: its own virtual clock, AFS server and client,
/// plus (for NEXUS setups) the SGX machine and mounted volume.
class Setup {
 public:
  /// Bare AFS (the paper's unmodified-OpenAFS baseline).
  static std::unique_ptr<Setup> Baseline(storage::CostModel cost = {}) {
    auto s = std::unique_ptr<Setup>(new Setup(cost));
    s->fs_ = std::make_unique<vfs::AfsPassthroughFs>(*s->afs_);
    return s;
  }

  /// NEXUS stacked on the same AFS deployment, volume created and mounted.
  /// `backend` overrides the AFS server's object store (default: in-memory)
  /// — e.g. a DiskBackend, or a net::RemoteBackend dialing a live nexusd.
  static std::unique_ptr<Setup> Nexus(
      storage::CostModel cost = {}, enclave::VolumeConfig config = {},
      std::unique_ptr<storage::StorageBackend> backend = nullptr) {
    auto s = std::unique_ptr<Setup>(new Setup(cost, std::move(backend)));
    s->cpu_ = s->intel_->ProvisionCpu(AsBytes("bench-cpu"));
    s->runtime_ = std::make_unique<sgx::EnclaveRuntime>(
        *s->cpu_, sgx::NexusEnclaveImage(), AsBytes("bench-rng"));
    s->nexus_ = std::make_unique<core::NexusClient>(*s->runtime_, *s->afs_,
                                                    s->intel_->root_public_key());
    s->user_ = core::UserKey::Generate("bench-user", s->rng_);
    auto handle = s->nexus_->CreateVolume(s->user_, config);
    if (!handle.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   handle.status().ToString().c_str());
      std::abort();
    }
    s->handle_ = std::move(handle).value();
    s->fs_ = std::make_unique<vfs::NexusFs>(*s->nexus_);
    return s;
  }

  [[nodiscard]] vfs::FileSystem& fs() { return *fs_; }
  [[nodiscard]] const core::NexusClient::VolumeHandle& handle() const {
    return handle_;
  }
  [[nodiscard]] const core::UserKey& user() const { return user_; }
  [[nodiscard]] storage::SimClock& clock() { return clock_; }
  [[nodiscard]] storage::AfsServer& server() { return server_; }
  [[nodiscard]] storage::AfsClient& afs() { return *afs_; }
  [[nodiscard]] core::NexusClient* nexus() { return nexus_.get(); }
  [[nodiscard]] sgx::EnclaveRuntime& runtime() { return *runtime_; }
  [[nodiscard]] const sgx::IntelAttestationService& intel() const {
    return *intel_;
  }
  [[nodiscard]] crypto::Rng& rng() { return rng_; }

  /// Cold caches, as the evaluation does before each run.
  void FlushCaches() {
    afs_->FlushCache();
    if (nexus_) nexus_->enclave().EcallDropCaches();
  }

  [[nodiscard]] double EnclaveSeconds() const {
    return nexus_ ? nexus_->Profile().enclave_seconds : 0.0;
  }
  [[nodiscard]] double MetaIoSeconds() const {
    return nexus_ ? nexus_->Profile().metadata_io_seconds : 0.0;
  }

 private:
  explicit Setup(storage::CostModel cost,
                 std::unique_ptr<storage::StorageBackend> backend = nullptr)
      : rng_(AsBytes("bench-seed")),
        intel_(std::make_unique<sgx::IntelAttestationService>(AsBytes("intel"))),
        server_(backend != nullptr
                    ? std::move(backend)
                    : std::make_unique<storage::MemBackend>(),
                clock_, cost) {
    afs_ = std::make_unique<storage::AfsClient>(server_, "bench-client");
  }

  crypto::HmacDrbg rng_;
  std::unique_ptr<sgx::IntelAttestationService> intel_;
  storage::SimClock clock_;
  storage::AfsServer server_;
  std::unique_ptr<storage::AfsClient> afs_;
  std::unique_ptr<sgx::SgxCpu> cpu_;
  std::unique_ptr<sgx::EnclaveRuntime> runtime_;
  std::unique_ptr<core::NexusClient> nexus_;
  core::UserKey user_;
  core::NexusClient::VolumeHandle handle_;
  std::unique_ptr<vfs::FileSystem> fs_;
};

/// Measures one workload phase: end-to-end latency = real wall time of the
/// phase + virtual I/O time it generated (enclave compute is part of wall
/// time; the virtual clock holds only simulated network/server cost).
class PhaseTimer {
 public:
  explicit PhaseTimer(Setup& setup, const char* label = "bench:phase")
      : span_(label, "bench"),
        setup_(setup),
        wall_start_(MonotonicNanos()),
        io_start_(setup.clock().Now()),
        meta_start_(setup.MetaIoSeconds()),
        enclave_start_(setup.EnclaveSeconds()) {}

  struct Sample {
    double total = 0;
    double metadata_io = 0;
    double enclave = 0;
  };

  [[nodiscard]] Sample Stop() const {
    Sample s;
    const double wall =
        static_cast<double>(MonotonicNanos() - wall_start_) * 1e-9;
    s.total = wall + (setup_.clock().Now() - io_start_);
    s.metadata_io = setup_.MetaIoSeconds() - meta_start_;
    s.enclave = setup_.EnclaveSeconds() - enclave_start_;
    return s;
  }

 private:
  trace::Span span_; // declared first: covers the whole phase lifetime
  Setup& setup_;
  std::uint64_t wall_start_;
  double io_start_;
  double meta_start_;
  double enclave_start_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Abort(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

} // namespace nexus::bench
