// Table 5b: latency of directory operations — create then delete N files
// in one flat directory, N in {1024, 2048, 4096, 8192}.
//
//   Paper (seconds):        1024   2048   4096   8192
//     OpenAFS               1.27   2.63   5.26   11.93
//     NEXUS                 19.38  38.62  81.98  172.29
//       Metadata I/O        17.44  34.63  73.66  154.34
//       Enclave             0.38   0.79   1.67   3.55
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace nexus::bench {
namespace {

PhaseTimer::Sample RunDirOps(Setup& setup, int n) {
  Abort(setup.fs().Mkdir("dir"), "mkdir");
  PhaseTimer timer(setup);
  for (int i = 0; i < n; ++i) {
    auto f = setup.fs().Open("dir/f" + std::to_string(i), vfs::OpenMode::kWrite);
    Abort(f.status(), "create");
    Abort((*f)->Close(), "close");
  }
  for (int i = 0; i < n; ++i) {
    Abort(setup.fs().Remove("dir/f" + std::to_string(i)), "delete");
  }
  const auto sample = timer.Stop();
  Abort(setup.fs().Remove("dir"), "rmdir");
  return sample;
}

} // namespace

int Main() {
  PrintHeader("Table 5b: Latency (seconds) of directory operations");

  struct Row {
    int n;
    double openafs;
    PhaseTimer::Sample nexus;
  };
  std::vector<Row> rows;
  for (const int n : {1024, 2048, 4096, 8192}) {
    Row row{n, 0, {}};
    {
      auto baseline = Setup::Baseline();
      row.openafs = RunDirOps(*baseline, n).total;
    }
    {
      auto nexus = Setup::Nexus();
      row.nexus = RunDirOps(*nexus, n);
    }
    rows.push_back(row);
  }

  std::printf("%-16s", "Prototype");
  for (const Row& r : rows) std::printf("%9d", r.n);
  std::printf("   (files)\n");
  std::printf("%-16s", "OpenAFS");
  for (const Row& r : rows) std::printf("%9.2f", r.openafs);
  std::printf("\n");
  std::printf("%-16s", "NEXUS");
  for (const Row& r : rows) std::printf("%9.2f", r.nexus.total);
  std::printf("\n");
  std::printf("%-16s", "  Metadata I/O");
  for (const Row& r : rows) std::printf("%9.2f", r.nexus.metadata_io);
  std::printf("\n");
  std::printf("%-16s", "  Enclave");
  for (const Row& r : rows) std::printf("%9.2f", r.nexus.enclave);
  std::printf("\n");
  std::printf("%-16s", "overhead (x)");
  for (const Row& r : rows) std::printf("%9.2f", r.nexus.total / r.openafs);
  std::printf("\n");
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
