// Table 5a: latency of basic file I/O (write then read one file of 1 / 2 /
// 16 / 64 MB, cold caches), with the paper's breakdown rows.
//
//   Paper (seconds):        1 MB   2 MB   16 MB  64 MB
//     OpenAFS               0.61   1.52   5.55   22.24
//     NEXUS                 0.51   1.46   6.81   28.56
//       Metadata I/O        0.09   0.12   0.14   0.80
//       Enclave             0.02   0.09   0.58   2.07
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace nexus::bench {
namespace {

struct Row {
  std::size_t mb;
  double openafs;
  PhaseTimer::Sample nexus;
};

PhaseTimer::Sample RunFileIo(Setup& setup, std::size_t mb) {
  const Bytes content = setup.rng().Generate(mb << 20);
  setup.FlushCaches();
  PhaseTimer timer(setup);
  Abort(setup.fs().WriteWholeFile("testfile.bin", content), "write");
  setup.FlushCaches(); // "we flush the AFS file cache" before the read
  const auto back = setup.fs().ReadWholeFile("testfile.bin");
  Abort(back.status(), "read");
  const auto sample = timer.Stop();
  if (back.value() != content) {
    std::fprintf(stderr, "read-back mismatch at %zu MB\n", mb);
    std::abort();
  }
  Abort(setup.fs().Remove("testfile.bin"), "cleanup");
  return sample;
}

} // namespace

int Main() {
  PrintHeader("Table 5a: Latency (seconds) of file I/O operations");

  std::vector<Row> rows;
  for (const std::size_t mb : {1u, 2u, 16u, 64u}) {
    Row row{mb, 0, {}};
    {
      auto baseline = Setup::Baseline();
      row.openafs = RunFileIo(*baseline, mb).total;
    }
    {
      auto nexus = Setup::Nexus();
      row.nexus = RunFileIo(*nexus, mb);
    }
    rows.push_back(row);
  }

  std::printf("%-16s", "Prototype");
  for (const Row& r : rows) std::printf("%8zu MB", r.mb);
  std::printf("\n");
  std::printf("%-16s", "OpenAFS");
  for (const Row& r : rows) std::printf("%11.2f", r.openafs);
  std::printf("\n");
  std::printf("%-16s", "NEXUS");
  for (const Row& r : rows) std::printf("%11.2f", r.nexus.total);
  std::printf("\n");
  std::printf("%-16s", "  Metadata I/O");
  for (const Row& r : rows) std::printf("%11.2f", r.nexus.metadata_io);
  std::printf("\n");
  std::printf("%-16s", "  Enclave");
  for (const Row& r : rows) std::printf("%11.2f", r.nexus.enclave);
  std::printf("\n");
  std::printf("%-16s", "overhead (x)");
  for (const Row& r : rows) std::printf("%11.2f", r.nexus.total / r.openafs);
  std::printf("\n");
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
