// Fig. 6: latency of common Linux applications (tar -x, du, grep, tar -c,
// cp, mv) under the three Table III workloads.
//
// Paper shape: tar -x / tar -c show the largest overheads (scaling with
// file count), du is ~indistinguishable once the dirnode is cached, grep
// is x1.5-1.7, cp and mv impose small constant overheads.
//
// Table III is generated at 1/10 the paper's data volume (EXPERIMENTS.md);
// the system cache is flushed before each application, as in §VII-D.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workloads/fsutils.hpp"
#include "workloads/treegen.hpp"

namespace nexus::bench {
namespace {

struct AppTimes {
  double tar_x = 0, du = 0, grep = 0, tar_c = 0, cp = 0, mv = 0;
};

// Builds the workload archive once on a zero-cost scratch deployment.
Bytes BuildArchive(const workloads::TreeSpec& spec) {
  storage::CostModel free_cost;
  free_cost.rtt_seconds = 0;
  free_cost.per_op_seconds = 0;
  free_cost.per_dirent_seconds = 0;
  free_cost.bandwidth_bytes_per_sec = 1e15;
  auto scratch = Setup::Baseline(free_cost);
  Abort(scratch->fs().Mkdir("tree"), "scratch mkdir");
  crypto::HmacDrbg rng(AsBytes("fig6-tree"));
  Abort(workloads::GenerateTree(scratch->fs(), "tree", spec, rng).status(),
        "scratch tree");
  Abort(workloads::TarCreate(scratch->fs(), "tree", "archive.tar"), "scratch tar");
  auto archive = scratch->fs().ReadWholeFile("archive.tar");
  Abort(archive.status(), "scratch read");
  return std::move(archive).value();
}

AppTimes RunApps(Setup& setup, const Bytes& archive) {
  AppTimes t;
  // Stage the archive on the mount (untimed, as in the paper's setup).
  Abort(setup.fs().WriteWholeFile("w.tar", archive), "stage archive");

  auto timed = [&](double* out, auto&& body) {
    setup.FlushCaches(); // "we flush the system cache before running each"
    PhaseTimer timer(setup);
    body();
    *out = timer.Stop().total;
  };

  timed(&t.tar_x, [&] {
    Abort(workloads::TarExtract(setup.fs(), "w.tar", "w"), "tar -x");
  });
  timed(&t.du, [&] {
    Abort(workloads::Du(setup.fs(), "w").status(), "du");
  });
  timed(&t.grep, [&] {
    Abort(workloads::GrepCount(setup.fs(), "w", "javascript").status(), "grep");
  });
  timed(&t.tar_c, [&] {
    Abort(workloads::TarCreate(setup.fs(), "w", "out.tar"), "tar -c");
  });
  timed(&t.cp, [&] {
    Abort(workloads::Cp(setup.fs(), "w/file0.c", "w/file0.copy"), "cp");
  });
  timed(&t.mv, [&] {
    Abort(workloads::Mv(setup.fs(), "w/file0.copy", "w/file0.moved"), "mv");
  });
  return t;
}

void PrintWorkload(const std::string& name, const AppTimes& base,
                   const AppTimes& nexus) {
  std::printf("\n-- workload %s --\n", name.c_str());
  std::printf("%-8s %10s %10s %10s\n", "app", "openafs", "nexus", "overhead");
  auto row = [](const char* app, double b, double n) {
    std::printf("%-8s %9.2fs %9.2fs %9.2fx\n", app, b, n, n / b);
  };
  row("tar -x", base.tar_x, nexus.tar_x);
  row("du", base.du, nexus.du);
  row("grep", base.grep, nexus.grep);
  row("tar -c", base.tar_c, nexus.tar_c);
  row("cp", base.cp, nexus.cp);
  row("mv", base.mv, nexus.mv);
}

} // namespace

int Main() {
  PrintHeader("Fig. 6: Latency of common Linux applications (Table III workloads)");

  for (const auto& spec :
       {workloads::LfsdSpec(), workloads::MfmdSpec(), workloads::SfldSpec()}) {
    const Bytes archive = BuildArchive(spec);
    AppTimes base;
    {
      auto baseline = Setup::Baseline();
      base = RunApps(*baseline, archive);
    }
    AppTimes nexus;
    {
      auto setup = Setup::Nexus();
      nexus = RunApps(*setup, archive);
    }
    PrintWorkload(spec.name, base, nexus);
  }
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
