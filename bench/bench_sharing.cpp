// §VII-F (takeaway discussion): the costs of providing sharing.
//  (1) the asynchronous rootkey exchange is a handful of file writes,
//  (2) adding/removing users is a single metadata update,
//  (3) policy enforcement scales with ACL size but is dominated by the
//      initial metadata fetch,
//  (4) extra: the synchronous PFS exchange variant for comparison.
#include <cstdio>

#include "bench_util.hpp"
#include "core/user_key.hpp"
#include "crypto/rng.hpp"

namespace nexus::bench {
namespace {

struct Deployment {
  std::unique_ptr<Setup> owner = Setup::Nexus();
  // A second machine sharing the same server.
  std::unique_ptr<sgx::IntelAttestationService> intel;
  std::unique_ptr<sgx::SgxCpu> cpu;
  std::unique_ptr<sgx::EnclaveRuntime> runtime;
  std::unique_ptr<storage::AfsClient> afs;
  std::unique_ptr<core::NexusClient> nexus;
  core::UserKey alice;
};

} // namespace

int Main() {
  PrintHeader("SVII-F: Costs of sharing");

  // -- (1) + (4): key exchange -------------------------------------------------
  for (const bool pfs : {false, true}) {
    auto owner_setup = Setup::Nexus();
    crypto::HmacDrbg rng(AsBytes("sharing"));
    // Second machine on the same server/world. We re-create the Intel root
    // with the same seed Setup uses so quotes verify across machines.
    sgx::IntelAttestationService intel(AsBytes("intel"));
    auto cpu = intel.ProvisionCpu(AsBytes("alice-cpu"));
    sgx::EnclaveRuntime runtime(*cpu, sgx::NexusEnclaveImage(), AsBytes("alice"));
    storage::AfsClient alice_afs(owner_setup->server(), "alice");
    core::NexusClient alice_nexus(runtime, alice_afs, intel.root_public_key());
    core::UserKey alice = core::UserKey::Generate("alice", rng);
    const core::UserKey& owner = owner_setup->user();
    const Uuid volume_uuid = owner_setup->handle().volume_uuid;

    const auto stores_before = owner_setup->afs().stats().stores +
                               alice_afs.stats().stores;
    PhaseTimer timer(*owner_setup);
    Status s1, s2;
    Result<core::NexusClient::VolumeHandle> handle =
        Error(ErrorCode::kInternal, "unset");
    if (!pfs) {
      s1 = alice_nexus.PublishIdentity(alice);
      s2 = owner_setup->nexus()->GrantAccess(owner, "alice", alice.public_key());
      handle = alice_nexus.AcceptGrant(alice, owner.name, owner.public_key(),
                                       volume_uuid);
    } else {
      s1 = alice_nexus.PublishEphemeralOffer(alice);
      s2 = owner_setup->nexus()->GrantAccessEphemeral(owner, "alice",
                                                      alice.public_key());
      handle = alice_nexus.AcceptEphemeralGrant(alice, owner.name,
                                                owner.public_key(), volume_uuid);
    }
    const auto sample = timer.Stop();
    const auto file_writes = owner_setup->afs().stats().stores +
                             alice_afs.stats().stores - stores_before;
    Abort(s1, "publish");
    Abort(s2, "grant");
    if (!handle.ok()) {
      std::fprintf(stderr, "accept failed: %s\n",
                   handle.status().ToString().c_str());
      std::abort();
    }
    std::printf("%-28s %6.1f ms end-to-end, %llu file writes on the store\n",
                pfs ? "ephemeral (PFS) exchange:" : "async exchange (Fig. 4):",
                sample.total * 1e3,
                static_cast<unsigned long long>(file_writes));
  }

  // -- (2): user management ----------------------------------------------------
  {
    auto setup = Setup::Nexus();
    crypto::HmacDrbg rng(AsBytes("users"));
    const core::UserKey bob = core::UserKey::Generate("bob", rng);
    const auto bytes_before = setup->afs().stats().bytes_stored;
    PhaseTimer add_timer(*setup);
    Abort(setup->nexus()->AddUser("bob", bob.public_key()), "adduser");
    const auto add = add_timer.Stop();
    const auto add_bytes = setup->afs().stats().bytes_stored - bytes_before;

    PhaseTimer rm_timer(*setup);
    Abort(setup->nexus()->RemoveUser("bob"), "rmuser");
    const auto rm = rm_timer.Stop();
    std::printf("add user:  %6.1f ms, %llu bytes re-uploaded (one supernode)\n",
                add.total * 1e3, static_cast<unsigned long long>(add_bytes));
    std::printf("remove user: %4.1f ms (same single metadata update)\n",
                rm.total * 1e3);
  }

  // -- (3): policy enforcement vs ACL size --------------------------------------
  // Measured as a NON-owner member (the owner short-circuits ACL checks):
  // the member's entry sits at the END of the ACL, the worst case.
  {
    std::printf("\npolicy enforcement (warm stat, non-owner) vs ACL entries:\n");
    std::printf("%-12s %14s\n", "ACL entries", "latency");
    for (const int n : {1, 16, 128, 1024, 8192}) {
      auto setup = Setup::Nexus();
      crypto::HmacDrbg rng(AsBytes("acl"));
      Abort(setup->fs().Mkdir("d"), "mkdir");
      Abort(setup->fs().WriteWholeFile("d/f", Bytes(100, 1)), "write");
      core::UserKey member = core::UserKey::Generate("member", rng);
      for (int i = 0; i < n - 1; ++i) {
        const core::UserKey u =
            core::UserKey::Generate("user" + std::to_string(i), rng);
        Abort(setup->nexus()->AddUser(u.name, u.public_key()), "add");
        Abort(setup->nexus()->SetAcl("d", u.name, enclave::kPermRead), "acl");
      }
      Abort(setup->nexus()->AddUser(member.name, member.public_key()), "add");
      Abort(setup->nexus()->SetAcl("", member.name, enclave::kPermRead), "acl");
      Abort(setup->nexus()->SetAcl("d", member.name, enclave::kPermRead), "acl");

      // The member mounts on the same machine (the sealed rootkey unseals
      // there; authorization comes from the supernode entry, §IV-B).
      core::NexusClient member_client(setup->runtime(), setup->afs(),
                                      setup->intel().root_public_key());
      Abort(setup->nexus()->Unmount(), "owner unmount");
      Abort(member_client.Mount(member, setup->handle().volume_uuid,
                                setup->handle().sealed_rootkey),
            "member mount");

      // Warm the caches, then time enforcement-bearing lookups.
      auto warm = member_client.Lookup("d/f");
      Abort(warm.status(), "warm");
      const double t0 = static_cast<double>(MonotonicNanos());
      constexpr int kOps = 1000;
      for (int i = 0; i < kOps; ++i) {
        Abort(member_client.Lookup("d/f").status(), "stat");
      }
      const double per_op =
          (static_cast<double>(MonotonicNanos()) - t0) / kOps / 1e3;
      std::printf("%-12d %11.2f us/op\n", n, per_op);
    }
  }
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
