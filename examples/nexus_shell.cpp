// An interactive shell over a persistent NEXUS volume.
//
// State (the simulated server's object store, the sealed rootkey, the
// sealed version table and the user identity) lives on disk, so the volume
// survives across runs:
//
//   $ ./examples/nexus_shell [state-dir]        # default ./nexus-shell-state
//   nexus> mkdir docs
//   nexus> put docs/hello.txt Hello, sealed world!
//   nexus> cat docs/hello.txt
//   nexus> tree
//   nexus> fsck
//   nexus> server                                # what the attacker sees
//
// Also scriptable: echo -e "mkdir d\nput d/f hi\ncat d/f" | nexus_shell
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/fsck.hpp"
#include "example_util.hpp"
#include "storage/backend.hpp"

using namespace nexus;

namespace {

Result<Bytes> LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kNotFound, path);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void SaveFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void PrintTree(core::NexusClient& nexus, const std::string& dir, int depth) {
  auto entries = nexus.ListDir(dir);
  if (!entries.ok()) return;
  for (const auto& e : *entries) {
    std::printf("%*s%s%s\n", depth * 2, "", e.name.c_str(),
                e.type == enclave::EntryType::kDirectory ? "/" : "");
    if (e.type == enclave::EntryType::kDirectory) {
      PrintTree(nexus, dir.empty() ? e.name : dir + "/" + e.name, depth + 1);
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::string state_dir = argc > 1 ? argv[1] : "nexus-shell-state";
  std::filesystem::create_directories(state_dir);

  // Durable world: server objects on disk, deterministic CPU/Intel.
  storage::SimClock clock;
  storage::AfsServer server(
      std::make_unique<storage::DiskBackend>(
          storage::DiskBackend::Open(state_dir + "/server").value()),
      clock);
  storage::AfsClient afs(server, "shell-user");
  sgx::IntelAttestationService intel(AsBytes("intel"));
  auto cpu = intel.ProvisionCpu(AsBytes("shell-cpu"));
  sgx::EnclaveRuntime runtime(*cpu, sgx::NexusEnclaveImage(),
                              crypto::SystemRng().Generate(32));
  core::NexusClient nexus(runtime, afs, intel.root_public_key());

  // Identity: generated on first run, reloaded afterwards.
  crypto::HmacDrbg user_rng(AsBytes("shell-user-identity"));
  core::UserKey user = core::UserKey::Generate("shell-user", user_rng);

  const std::string rootkey_path = state_dir + "/sealed-rootkey";
  const std::string uuid_path = state_dir + "/volume-uuid";
  const std::string versions_path = state_dir + "/sealed-versions";

  Uuid volume_uuid;
  if (auto sealed = LoadFile(rootkey_path); sealed.ok()) {
    auto uuid_hex = LoadFile(uuid_path);
    if (!uuid_hex.ok()) {
      std::fprintf(stderr, "state dir corrupt: missing volume uuid\n");
      return 1;
    }
    volume_uuid = Uuid::Parse(ToString(*uuid_hex)).value();
    if (auto versions = LoadFile(versions_path); versions.ok()) {
      (void)nexus.ImportSealedVersionTable(*versions);
    }
    const Status s = nexus.Mount(user, volume_uuid, *sealed);
    if (!s.ok()) {
      std::fprintf(stderr, "mount failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("mounted existing volume %s\n", volume_uuid.ToString().c_str());
  } else {
    auto handle = nexus.CreateVolume(user);
    if (!handle.ok()) {
      std::fprintf(stderr, "create failed: %s\n", handle.status().ToString().c_str());
      return 1;
    }
    volume_uuid = handle->volume_uuid;
    SaveFile(rootkey_path, handle->sealed_rootkey);
    SaveFile(uuid_path, AsBytes(volume_uuid.ToString()));
    std::printf("created new volume %s\n", volume_uuid.ToString().c_str());
  }

  std::printf("type 'help' for commands\n");
  std::string line;
  const bool tty = isatty(fileno(stdin));
  while ((tty && std::printf("nexus> ") && std::fflush(stdout) >= 0, true) &&
         std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd, a, b;
    ss >> cmd >> a;
    std::getline(ss, b);
    if (!b.empty() && b[0] == ' ') b.erase(0, 1);

    auto report = [](const Status& s) {
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
    };

    if (cmd.empty()) continue;
    if (cmd == "help") {
      std::printf(
          "  mkdir <dir>          ls [dir]        tree\n"
          "  put <file> <text>    cat <file>      rm <path>\n"
          "  mv <from> <to>       ln <target> <link>   stat <path>\n"
          "  users                fsck            server\n"
          "  quit\n");
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "mkdir") {
      report(nexus.Mkdir(a));
    } else if (cmd == "ls") {
      auto entries = nexus.ListDir(a);
      if (!entries.ok()) {
        report(entries.status());
      } else {
        for (const auto& e : *entries) {
          std::printf("%s%s\n", e.name.c_str(),
                      e.type == enclave::EntryType::kDirectory ? "/" : "");
        }
      }
    } else if (cmd == "tree") {
      PrintTree(nexus, "", 0);
    } else if (cmd == "put") {
      report(nexus.WriteFile(a, AsBytes(b)));
    } else if (cmd == "cat") {
      auto content = nexus.ReadFile(a);
      if (!content.ok()) {
        report(content.status());
      } else {
        std::printf("%s\n", ToString(*content).c_str());
      }
    } else if (cmd == "rm") {
      report(nexus.Remove(a));
    } else if (cmd == "mv") {
      report(nexus.Rename(a, b));
    } else if (cmd == "ln") {
      report(nexus.Symlink(a, b));
    } else if (cmd == "stat") {
      auto attrs = nexus.Lookup(a);
      if (!attrs.ok()) {
        report(attrs.status());
      } else {
        const char* type = attrs->type == enclave::EntryType::kDirectory ? "dir"
                           : attrs->type == enclave::EntryType::kSymlink ? "symlink"
                                                                         : "file";
        std::printf("%s  %s  %llu bytes  uuid=%s\n", a.c_str(), type,
                    static_cast<unsigned long long>(attrs->size),
                    attrs->uuid.ToString().c_str());
      }
    } else if (cmd == "users") {
      auto users = nexus.ListUsers();
      if (users.ok()) {
        for (const auto& u : *users) std::printf("%u  %s\n", u.id, u.name.c_str());
      }
    } else if (cmd == "fsck") {
      auto r = core::RunFsck(nexus, /*deep=*/true);
      if (!r.ok()) {
        report(r.status());
      } else {
        std::printf("ok: %llu dirs, %llu files, %llu symlinks, %llu bytes, "
                    "%zu orphans\n",
                    static_cast<unsigned long long>(r->audit.directories),
                    static_cast<unsigned long long>(r->audit.files),
                    static_cast<unsigned long long>(r->audit.symlinks),
                    static_cast<unsigned long long>(r->audit.plaintext_bytes),
                    r->orphaned_objects.size());
      }
    } else if (cmd == "server") {
      auto names = afs.List("");
      if (names.ok()) {
        for (const auto& n : *names) {
          auto st = server.AdversaryRead(n);
          std::printf("%-40s %6zu bytes of ciphertext\n", n.c_str(),
                      st.ok() ? st->size() : 0);
        }
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }

  // Persist the rollback-defence table before exit.
  if (auto versions = nexus.ExportSealedVersionTable(); versions.ok()) {
    SaveFile(versions_path, *versions);
  }
  if (tty) std::printf("\n");
  return 0;
}
