// Shared scaffolding for the examples: a simulated world with an untrusted
// AFS server, Intel attestation, and per-user SGX machines.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/nexus_client.hpp"
#include "core/user_key.hpp"
#include "crypto/rng.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "storage/afs.hpp"
#include "storage/backend.hpp"

namespace nexus::examples {

/// One user's machine: SGX CPU, enclave runtime, AFS client and the NEXUS
/// daemon (NexusClient).
struct Machine {
  std::unique_ptr<sgx::SgxCpu> cpu;
  std::unique_ptr<sgx::EnclaveRuntime> runtime;
  std::unique_ptr<storage::AfsClient> afs;
  std::unique_ptr<core::NexusClient> nexus;
  core::UserKey user;
};

class World {
 public:
  World()
      : rng_(AsBytes("example")),
        intel_(AsBytes("intel")),
        server_(std::make_unique<storage::MemBackend>(), clock_) {}

  Machine& AddMachine(const std::string& username) {
    auto m = std::make_unique<Machine>();
    m->cpu = intel_.ProvisionCpu(AsBytes("cpu-" + username));
    m->runtime = std::make_unique<sgx::EnclaveRuntime>(
        *m->cpu, sgx::NexusEnclaveImage(), AsBytes("rng-" + username));
    m->afs = std::make_unique<storage::AfsClient>(server_, username);
    m->nexus = std::make_unique<core::NexusClient>(*m->runtime, *m->afs,
                                                   intel_.root_public_key());
    m->user = core::UserKey::Generate(username, rng_);
    machines_.push_back(std::move(m));
    return *machines_.back();
  }

  [[nodiscard]] storage::AfsServer& server() noexcept { return server_; }
  [[nodiscard]] crypto::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const sgx::IntelAttestationService& intel() const noexcept {
    return intel_;
  }

 private:
  crypto::HmacDrbg rng_;
  sgx::IntelAttestationService intel_;
  storage::SimClock clock_;
  storage::AfsServer server_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
  std::printf("  ok: %s\n", what);
}

} // namespace nexus::examples
