// Encrypted backup & restore: pack a protected directory tree into a
// (ustar) archive stored on the same untrusted volume, damage the live
// tree, and restore it — demonstrating the workloads library (tar, du,
// grep) as a user-facing toolkit over the NEXUS VFS.
//
//   $ ./examples/backup_restore
#include <cstdio>

#include "example_util.hpp"
#include "vfs/nexus_fs.hpp"
#include "workloads/fsutils.hpp"
#include "workloads/treegen.hpp"

using namespace nexus;

int main() {
  std::printf("== NEXUS backup & restore ==\n\n");
  examples::World world;
  auto& owen = world.AddMachine("owen");
  examples::Check(owen.nexus->CreateVolume(owen.user).status(), "create volume");
  vfs::NexusFs fs(*owen.nexus);

  // A project tree with a few dozen files.
  std::printf("\n[1] populate project/\n");
  examples::Check(fs.Mkdir("project"), "mkdir project");
  workloads::TreeSpec spec{"project", 40, 6, 3, {}, 512 << 10};
  crypto::HmacDrbg rng(AsBytes("backup"));
  auto stats = workloads::GenerateTree(fs, "project", spec, rng);
  examples::Check(stats.status(), "generate tree");
  std::printf("  %llu files, %llu dirs, %llu bytes\n",
              static_cast<unsigned long long>(stats->files),
              static_cast<unsigned long long>(stats->dirs),
              static_cast<unsigned long long>(stats->total_bytes));

  std::printf("\n[2] tar -c project/ -> backups/project.tar (encrypted at rest)\n");
  examples::Check(fs.Mkdir("backups"), "mkdir backups");
  examples::Check(workloads::TarCreate(fs, "project", "backups/project.tar"),
                  "create archive");
  const auto archive_size = fs.Stat("backups/project.tar")->size;
  std::printf("  archive: %llu bytes (stored as ciphertext chunks)\n",
              static_cast<unsigned long long>(archive_size));

  std::printf("\n[3] disaster: the project directory is wiped\n");
  // Delete the whole tree (depth-first).
  std::function<Status(const std::string&)> rm_rf =
      [&](const std::string& dir) -> Status {
    NEXUS_ASSIGN_OR_RETURN(std::vector<vfs::Dirent> entries, fs.ReadDir(dir));
    for (const auto& e : entries) {
      const std::string full = dir + "/" + e.name;
      if (e.type == vfs::FileType::kDirectory) {
        NEXUS_RETURN_IF_ERROR(rm_rf(full));
      } else {
        NEXUS_RETURN_IF_ERROR(fs.Remove(full));
      }
    }
    return fs.Remove(dir);
  };
  examples::Check(rm_rf("project"), "rm -rf project");

  std::printf("\n[4] tar -x backups/project.tar -> project/\n");
  examples::Check(workloads::TarExtract(fs, "backups/project.tar", "project"),
                  "extract archive");
  const auto du = workloads::Du(fs, "project");
  examples::Check(du.status(), "du project");
  std::printf("  restored %llu bytes", static_cast<unsigned long long>(*du));
  std::printf(" (%s)\n", *du == stats->total_bytes ? "bit-exact" : "MISMATCH");
  if (*du != stats->total_bytes) return 1;

  const auto hits = workloads::GrepCount(fs, "project", "javascript");
  examples::Check(hits.status(), "grep -r javascript project/");
  std::printf("  grep sanity: %llu files match 'javascript'\n",
              static_cast<unsigned long long>(*hits));

  std::printf("\nDone: the archive, like everything else, was never visible "
              "to the server in plaintext.\n");
  return 0;
}
