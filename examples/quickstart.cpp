// Quickstart: create a protected volume on an untrusted storage service,
// store and read files, and see what the server actually learns (nothing).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "example_util.hpp"

using namespace nexus;

int main() {
  std::printf("== NEXUS quickstart ==\n\n");

  // A simulated deployment: one untrusted AFS-like server, one user
  // machine with an SGX CPU provisioned by (simulated) Intel.
  examples::World world;
  examples::Machine& owen = world.AddMachine("owen");

  // 1. Create a protected volume. The rootkey is generated inside the
  //    enclave and comes back sealed to this machine — nobody, including
  //    Owen, ever sees it in the clear.
  std::printf("[1] create volume\n");
  auto handle = owen.nexus->CreateVolume(owen.user);
  examples::Check(handle.status(), "volume created, rootkey sealed");
  std::printf("  volume id: %s\n  sealed rootkey: %zu bytes (machine-bound)\n",
              handle->volume_uuid.ToString().c_str(),
              handle->sealed_rootkey.size());

  // 2. Use it like a normal filesystem.
  std::printf("\n[2] normal file operations\n");
  examples::Check(owen.nexus->Mkdir("docs"), "mkdir docs");
  examples::Check(owen.nexus->WriteFile("docs/plan.txt",
                                        AsBytes("Q3 launch: sell everything")),
                  "write docs/plan.txt");
  auto content = owen.nexus->ReadFile("docs/plan.txt");
  examples::Check(content.status(), "read docs/plan.txt");
  std::printf("  content: \"%s\"\n", ToString(*content).c_str());

  auto entries = owen.nexus->ListDir("docs");
  examples::Check(entries.status(), "list docs/");
  for (const auto& e : *entries) std::printf("  docs/%s\n", e.name.c_str());

  // 3. What the untrusted server sees: UUID-named ciphertext objects.
  std::printf("\n[3] the server's view\n");
  auto names = owen.afs->List("");
  for (const auto& name : *names) {
    const auto blob = world.server().AdversaryRead(name).value();
    std::printf("  %-40s %6zu bytes of ciphertext\n", name.c_str(), blob.size());
  }
  std::printf("  (no filenames, no directory structure, no plaintext)\n");

  // 4. Unmount and remount: the challenge-response login (§IV-B).
  std::printf("\n[4] remount with challenge-response authentication\n");
  examples::Check(owen.nexus->Unmount(), "unmount");
  examples::Check(
      owen.nexus->Mount(owen.user, handle->volume_uuid, handle->sealed_rootkey),
      "mount (unseal + signature over nonce||supernode)");
  auto again = owen.nexus->ReadFile("docs/plan.txt");
  examples::Check(again.status(), "read after remount");

  std::printf("\nDone.\n");
  return 0;
}
