// The threat model in action: a fully malicious storage server reads,
// tampers, swaps and rolls back objects — and every manipulation is either
// useless (confidentiality) or detected (tamper evidence).
//
//   $ ./examples/untrusted_server
#include <cstdio>

#include "example_util.hpp"

using namespace nexus;

namespace {

void Expect(bool detected, const char* attack) {
  std::printf("  %-52s %s\n", attack, detected ? "DETECTED" : "** MISSED **");
  if (!detected) std::exit(1);
}

} // namespace

int main() {
  std::printf("== NEXUS vs a malicious server ==\n\n");
  examples::World world;
  auto& owen = world.AddMachine("owen");
  auto handle = owen.nexus->CreateVolume(owen.user);
  examples::Check(handle.status(), "create volume");

  examples::Check(owen.nexus->Mkdir("a"), "mkdir a");
  examples::Check(owen.nexus->Mkdir("b"), "mkdir b");
  examples::Check(owen.nexus->WriteFile("a/secret.txt",
                                        AsBytes("attack at dawn")),
                  "write a/secret.txt");
  examples::Check(owen.nexus->WriteFile("b/other.txt", AsBytes("decoy")),
                  "write b/other.txt");

  auto& server = world.server();

  std::printf("\n[1] confidentiality: the server greps everything it stores\n");
  bool leaked = false;
  const auto names = owen.afs->List("").value();
  for (const auto& name : names) {
    const Bytes blob = server.AdversaryRead(name).value();
    const std::string raw(reinterpret_cast<const char*>(blob.data()), blob.size());
    if (raw.find("attack at dawn") != std::string::npos ||
        name.find("secret") != std::string::npos) {
      leaked = true;
    }
  }
  std::printf("  plaintext or filenames visible to the server: %s\n",
              leaked ? "** YES **" : "no");

  std::printf("\n[2] integrity attacks (fresh victim session each time)\n");
  auto fresh_session = [&] {
    (void)owen.nexus->Unmount();
    owen.afs->FlushCache();
    owen.nexus = std::make_unique<core::NexusClient>(
        *owen.runtime, *owen.afs, world.intel().root_public_key());
    examples::Check(owen.nexus->Mount(owen.user, handle->volume_uuid,
                                      handle->sealed_rootkey),
                    "victim remounts");
  };

  // 2a. Bit flip in a stored object.
  const std::string obj = "nx/" + owen.nexus->Lookup("a")->uuid.ToString();
  Bytes blob = server.AdversaryRead(obj).value();
  const Bytes original = blob;
  blob[blob.size() / 2] ^= 1;
  (void)server.AdversaryWrite(obj, blob);
  fresh_session();
  Expect(!owen.nexus->ListDir("a").ok(), "ciphertext bit-flip in dirnode");
  (void)server.AdversaryWrite(obj, original); // restore
  owen.afs->FlushCache();                     // adversary edits are silent
  owen.nexus->enclave().EcallDropCaches();

  // 2b. Swap two directories' metadata (file-swapping).
  const std::string obj_a = "nx/" + owen.nexus->Lookup("a")->uuid.ToString();
  const std::string obj_b = "nx/" + owen.nexus->Lookup("b")->uuid.ToString();
  (void)server.AdversarySwap(obj_a, obj_b);
  fresh_session();
  Expect(!owen.nexus->ListDir("a").ok(), "directory swap (a <-> b)");
  (void)server.AdversarySwap(obj_a, obj_b); // restore
  owen.afs->FlushCache();
  owen.nexus->enclave().EcallDropCaches();

  // 2c. Rollback to an earlier version.
  const Bytes snapshot = server.AdversarySnapshot(obj_a).value();
  examples::Check(owen.nexus->WriteFile("a/new-file", AsBytes("v2")),
                  "owen adds a/new-file");
  (void)server.AdversaryRollback(obj_a, snapshot);
  server.AdversaryInvalidateCallbacks(obj_a);
  owen.nexus->enclave().EcallDropCaches();
  Expect(!owen.nexus->ListDir("a").ok(), "rollback of dirnode to stale version");

  std::printf("\nAll manipulations detected; plaintext never left the enclave.\n");
  return 0;
}
