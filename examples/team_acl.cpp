// Team access control: an owner shares different directories with
// different users at different permission levels, then revokes one —
// without re-encrypting a single file (the paper's headline property).
//
//   $ ./examples/team_acl
#include <cstdio>

#include "example_util.hpp"

using namespace nexus;
using enclave::kPermNone;
using enclave::kPermRead;
using enclave::kPermWrite;

namespace {

// Runs the full in-band attested key exchange (Fig. 4) so `member` can
// mount `owner`'s volume from their own machine.
void ShareVolume(examples::Machine& owner, examples::Machine& member,
                 const Uuid& volume) {
  examples::Check(member.nexus->PublishIdentity(member.user),
                  (member.user.name + ": publish enclave identity").c_str());
  examples::Check(owner.nexus->GrantAccess(owner.user, member.user.name,
                                           member.user.public_key()),
                  ("owner: attest + grant rootkey to " + member.user.name).c_str());
  auto handle = member.nexus->AcceptGrant(member.user, owner.user.name,
                                          owner.user.public_key(), volume);
  examples::Check(handle.status(),
                  (member.user.name + ": extract + seal rootkey").c_str());
  examples::Check(
      member.nexus->Mount(member.user, volume, handle->sealed_rootkey),
      (member.user.name + ": mount").c_str());
}

} // namespace

int main() {
  std::printf("== NEXUS team access control ==\n\n");
  examples::World world;
  auto& owen = world.AddMachine("owen");
  auto& alice = world.AddMachine("alice");
  auto& bob = world.AddMachine("bob");

  auto handle = owen.nexus->CreateVolume(owen.user);
  examples::Check(handle.status(), "owen: create volume");

  std::printf("\n[1] volume layout\n");
  examples::Check(owen.nexus->Mkdir("public"), "mkdir public");
  examples::Check(owen.nexus->Mkdir("finance"), "mkdir finance");
  examples::Check(owen.nexus->WriteFile("public/readme.md",
                                        AsBytes("welcome to the team")),
                  "write public/readme.md");
  examples::Check(owen.nexus->WriteFile("finance/salaries.csv",
                                        AsBytes("everyone,1000000")),
                  "write finance/salaries.csv");

  std::printf("\n[2] share the volume with alice and bob\n");
  ShareVolume(owen, alice, handle->volume_uuid);
  ShareVolume(owen, bob, handle->volume_uuid);

  std::printf("\n[3] per-directory ACLs (default deny)\n");
  examples::Check(owen.nexus->SetAcl("", "alice", kPermRead), "root: alice r");
  examples::Check(owen.nexus->SetAcl("", "bob", kPermRead), "root: bob r");
  examples::Check(owen.nexus->SetAcl("public", "alice", kPermRead | kPermWrite),
                  "public: alice rw");
  examples::Check(owen.nexus->SetAcl("public", "bob", kPermRead), "public: bob r");
  examples::Check(owen.nexus->SetAcl("finance", "alice", kPermRead),
                  "finance: alice r");
  // bob gets no entry for finance/ at all.

  std::printf("\n[4] enforcement happens inside each user's enclave\n");
  auto r1 = alice.nexus->ReadFile("finance/salaries.csv");
  std::printf("  alice reads finance/salaries.csv: %s\n",
              r1.ok() ? "ALLOWED" : "denied");
  auto r2 = bob.nexus->ReadFile("finance/salaries.csv");
  std::printf("  bob   reads finance/salaries.csv: %s\n",
              r2.ok() ? "ALLOWED" : r2.status().ToString().c_str());
  auto w1 = alice.nexus->WriteFile("public/from-alice.txt", AsBytes("hi"));
  std::printf("  alice writes public/from-alice.txt: %s\n",
              w1.ok() ? "ALLOWED" : "denied");
  auto w2 = bob.nexus->WriteFile("public/from-bob.txt", AsBytes("hi"));
  std::printf("  bob   writes public/from-bob.txt: %s\n",
              w2.ok() ? "ALLOWED" : w2.ToString().c_str());

  std::printf("\n[5] revoke alice from finance/ — one metadata update\n");
  const auto before = owen.afs->stats().bytes_stored;
  examples::Check(owen.nexus->SetAcl("finance", "alice", kPermNone),
                  "owen: revoke alice from finance");
  const auto after = owen.afs->stats().bytes_stored;
  std::printf("  bytes re-uploaded for revocation: %llu (no file re-encryption)\n",
              static_cast<unsigned long long>(after - before));
  auto r3 = alice.nexus->ReadFile("finance/salaries.csv");
  std::printf("  alice reads finance/salaries.csv now: %s\n",
              r3.ok() ? "STILL ALLOWED (bug!)" : "denied");

  std::printf("\n[6] remove bob from the volume entirely\n");
  examples::Check(owen.nexus->RemoveUser("bob"), "owen: remove user bob");
  auto users = owen.nexus->ListUsers();
  std::printf("  remaining users:");
  for (const auto& u : *users) std::printf(" %s", u.name.c_str());
  std::printf("\n");

  std::printf("\nDone.\n");
  return 0;
}
