// Deterministic fault-injection tests: every retryable fault either
// succeeds within the bounded retry budget or surfaces a clean error, and
// no schedule ever produces a partially visible object. All decisions
// come from (seed, frame index) — no real timeouts, no flaky sleeps.
#include <gtest/gtest.h>

#include <mutex>

#include "net/fault.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "storage/backend.hpp"

namespace nexus::net {
namespace {

/// Records every backoff sleep instead of performing it.
struct SleepRecorder {
  std::mutex mu;
  std::vector<int> sleeps_ms;

  std::function<void(int)> fn() {
    return [this](int ms) {
      const std::lock_guard<std::mutex> lock(mu);
      sleeps_ms.push_back(ms);
    };
  }
};

/// A scenario: nexusd on MemBackend + a RemoteBackend whose every
/// connection goes through a FaultyTransport with the given spec. Each
/// redial mixes the connection ordinal into the seed so schedules differ
/// per connection but the whole run replays exactly.
class FaultScenario {
 public:
  FaultScenario(FaultSpec spec, std::uint64_t seed, int max_attempts = 6) {
    NexusdOptions options;
    options.workers = 8;
    server_ = NexusdServer::Start(store_, options).value();
    stats_ = std::make_shared<FaultStats>();

    const std::uint16_t port = server_->port();
    auto counter = std::make_shared<std::uint64_t>(0);
    auto stats = stats_;
    TransportFactory factory = [port, spec, seed, counter,
                                stats]() -> Result<std::unique_ptr<Transport>> {
      NEXUS_ASSIGN_OR_RETURN(
          std::unique_ptr<TcpTransport> tcp,
          TcpTransport::Dial("127.0.0.1", port, 2000, 2000));
      const std::uint64_t connection_seed = seed + 0x9e37 * (*counter)++;
      return std::unique_ptr<Transport>(std::make_unique<FaultyTransport>(
          std::move(tcp), spec, connection_seed, stats));
    };

    RemoteBackendOptions client;
    client.max_attempts = max_attempts;
    client.backoff_base_ms = 5;
    client.backoff_cap_ms = 100;
    client.sleep_ms = sleeps_.fn();
    remote_ = std::make_unique<RemoteBackend>(std::move(factory), client);
  }

  RemoteBackend& remote() { return *remote_; }
  storage::MemBackend& store() { return store_; }
  const FaultStats& fault_stats() const { return *stats_; }
  std::vector<int> sleeps() {
    const std::lock_guard<std::mutex> lock(sleeps_.mu);
    return sleeps_.sleeps_ms;
  }
  NetCounters counters() const { return remote_->counters(); }

 private:
  storage::MemBackend store_;
  std::unique_ptr<NexusdServer> server_;
  std::shared_ptr<FaultStats> stats_;
  SleepRecorder sleeps_;
  std::unique_ptr<RemoteBackend> remote_;
};

TEST(NetFault, CleanSpecInjectsNothing) {
  FaultScenario scenario({}, 1);
  ASSERT_TRUE(scenario.remote().Put("a", Bytes{1}).ok());
  EXPECT_EQ(scenario.remote().Get("a").value(), Bytes{1});
  EXPECT_EQ(scenario.fault_stats().injected(), 0u);
  EXPECT_TRUE(scenario.sleeps().empty());
}

// Every request dropped: the RPC must fail after exactly max_attempts
// tries with one backoff between consecutive attempts, each bounded by
// the configured cap.
TEST(NetFault, AllRequestsDroppedFailsCleanlyAfterBoundedRetries) {
  FaultSpec spec;
  spec.drop_request = 1.0;
  FaultScenario scenario(spec, 42, /*max_attempts=*/4);

  const Status put = scenario.remote().Put("a", Bytes{1});
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.code(), ErrorCode::kIOError);
  EXPECT_FALSE(scenario.store().Exists("a"));

  EXPECT_EQ(scenario.fault_stats().dropped_requests, 4u);
  const auto sleeps = scenario.sleeps();
  ASSERT_EQ(sleeps.size(), 3u); // attempts-1 backoffs
  for (const int ms : sleeps) {
    EXPECT_GE(ms, 1);
    EXPECT_LE(ms, 100);
  }
  // Exponential shape survives jitter: jitter is in [0.5, 1.0), so the
  // third backoff (nominal 4*base) always exceeds half the first's cap.
  EXPECT_GE(sleeps[2], 10); // >= 0.5 * 4 * base
  EXPECT_EQ(scenario.counters().retries, 3u);
}

// Connection reset before every send: same bounded failure, and the RPC
// never reached the server.
TEST(NetFault, AllResetsFailCleanly) {
  FaultSpec spec;
  spec.reset = 1.0;
  FaultScenario scenario(spec, 7, /*max_attempts=*/3);
  EXPECT_FALSE(scenario.remote().Put("a", Bytes{1}).ok());
  EXPECT_FALSE(scenario.store().Exists("a"));
  EXPECT_EQ(scenario.fault_stats().resets, 3u);
  EXPECT_EQ(scenario.counters().reconnects, 2u); // every retry redialed
}

// Dropped responses: the server APPLIES the RPC, the client cannot see the
// verdict. Retries must converge — Put is idempotent, and an ambiguous
// Delete that later sees kNotFound reports success.
TEST(NetFault, DroppedResponsesConvergeOnIdempotentOps) {
  FaultSpec spec;
  spec.drop_response = 0.4;
  FaultScenario scenario(spec, 1234, /*max_attempts=*/8);

  for (int i = 0; i < 20; ++i) {
    const std::string name = "obj" + std::to_string(i);
    ASSERT_TRUE(scenario.remote().Put(name, Bytes(50 + i, 7)).ok()) << name;
    EXPECT_EQ(scenario.remote().Get(name).value(), Bytes(50 + i, 7)) << name;
  }
  for (int i = 0; i < 20; ++i) {
    const std::string name = "obj" + std::to_string(i);
    ASSERT_TRUE(scenario.remote().Delete(name).ok()) << name;
    EXPECT_FALSE(scenario.store().Exists(name)) << name;
  }
  EXPECT_GT(scenario.fault_stats().dropped_responses, 0u);
}

// The full storm: all four faults active at once. Every operation that
// reports success must be durably correct; operations that report failure
// must leave no partial object.
TEST(NetFault, MixedFaultStormNeverCorrupts) {
  FaultSpec spec;
  spec.drop_request = 0.08;
  spec.drop_response = 0.08;
  spec.truncate = 0.08;
  spec.reset = 0.08;
  FaultScenario scenario(spec, 0xfeedface, /*max_attempts=*/10);

  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string name = "k" + std::to_string(i);
    const Bytes data(200 + 13 * i, static_cast<std::uint8_t>(i));
    if (scenario.remote().Put(name, data).ok()) {
      auto back = scenario.store().Get(name);
      ASSERT_TRUE(back.ok()) << name;
      EXPECT_EQ(back.value(), data) << name;
    } else {
      ++failures;
      // A failed Put either never applied or fully applied (ambiguous
      // response loss) — never a prefix.
      auto back = scenario.store().Get(name);
      if (back.ok()) {
        EXPECT_EQ(back.value(), data) << name;
      }
    }
  }
  EXPECT_GT(scenario.fault_stats().injected(), 0u);
  EXPECT_LT(failures, 10); // the retry budget absorbs almost everything
}

// Streamed put under faults: any transport failure restarts the whole
// stream on a fresh connection; the committed object is always the full
// byte sequence, never a partial replay.
TEST(NetFault, StreamedPutSurvivesFaultsOrFailsWithoutPartialObject) {
  FaultSpec spec;
  spec.truncate = 0.10;
  spec.reset = 0.05;
  spec.drop_response = 0.05;
  FaultScenario scenario(spec, 99, /*max_attempts=*/10);

  Bytes want;
  auto stream = scenario.remote().OpenPutStream("streamed").value();
  bool failed = false;
  for (int seg = 0; seg < 8; ++seg) {
    const Bytes segment(1 << 18, static_cast<std::uint8_t>(seg + 1));
    if (!stream->Append(segment).ok()) {
      failed = true;
      break;
    }
    want.insert(want.end(), segment.begin(), segment.end());
    EXPECT_FALSE(scenario.store().Exists("streamed")); // invisible mid-stream
  }
  if (!failed) failed = !stream->Commit().ok();

  if (failed) {
    // Commit ambiguity may have published the full object; anything else
    // must have published nothing.
    auto back = scenario.store().Get("streamed");
    if (back.ok()) {
      EXPECT_EQ(back.value(), want);
    }
  } else {
    EXPECT_EQ(scenario.store().Get("streamed").value(), want);
  }
  EXPECT_GT(scenario.fault_stats().injected(), 0u);
}

// The Stats RPC rides the same retry machinery as storage RPCs: with
// responses being dropped it still completes within the retry budget and
// reports a coherent snapshot.
TEST(NetFault, StatsRpcRetriesThroughDroppedResponses) {
  FaultSpec spec;
  spec.drop_response = 0.5;
  FaultScenario scenario(spec, 31337, /*max_attempts=*/10);

  ASSERT_TRUE(scenario.remote().Put("a", Bytes{1}).ok());
  auto stats = scenario.remote().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The server applied (and counted) every attempt that reached it — at
  // minimum the successful Put.
  EXPECT_GE(stats.value().rpcs_served, 1u);
  EXPECT_GE(stats.value().connections_accepted, 1u);
  std::uint64_t per_op_total = 0;
  for (const auto& row : stats.value().per_op) per_op_total += row.count;
  EXPECT_EQ(per_op_total, stats.value().rpcs_served);
  EXPECT_GT(scenario.fault_stats().dropped_responses, 0u);
}

// The backoff streak RESETS on success: a transient blip early in the
// run must not inflate the delay of an unrelated later retry. Ordinals
// 0 and 1 (the first Put's first two attempts) drop the request, ordinal
// 2 succeeds — which must zero the streak — then ordinal 3 (the second
// Put's first attempt) drops again and ordinal 4 succeeds.
TEST(NetFault, BackoffStreakResetsAfterSuccess) {
  storage::MemBackend store;
  NexusdOptions server_options;
  server_options.workers = 8;
  auto server = NexusdServer::Start(store, server_options).value();

  const std::uint16_t port = server->port();
  auto stats = std::make_shared<FaultStats>();
  auto ordinal = std::make_shared<std::uint64_t>(0);
  TransportFactory factory = [port, stats,
                              ordinal]() -> Result<std::unique_ptr<Transport>> {
    NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> tcp,
                           TcpTransport::Dial("127.0.0.1", port, 2000, 2000));
    const std::uint64_t n = (*ordinal)++;
    FaultSpec spec;
    if (n == 0 || n == 1 || n == 3) spec.drop_request = 1.0;
    return std::unique_ptr<Transport>(
        std::make_unique<FaultyTransport>(std::move(tcp), spec, n, stats));
  };

  SleepRecorder sleeps;
  RemoteBackendOptions client;
  client.max_attempts = 6;
  client.backoff_base_ms = 5;
  client.backoff_cap_ms = 100;
  client.max_pooled_connections = 0; // one dial (one ordinal) per attempt
  client.sleep_ms = sleeps.fn();
  RemoteBackend remote(std::move(factory), client);

  ASSERT_TRUE(remote.Put("a", Bytes{1}).ok()); // attempts 1,2 drop; 3 lands
  ASSERT_TRUE(remote.Put("b", Bytes{2}).ok()); // attempt 1 drops; 2 lands

  const auto recorded = [&] {
    const std::lock_guard<std::mutex> lock(sleeps.mu);
    return sleeps.sleeps_ms;
  }();
  ASSERT_EQ(recorded.size(), 3u);
  // Second backoff of the first Put: streak 2, nominal 2*base, jitter in
  // [0.5, 1.0) => [5, 9] ms.
  EXPECT_GE(recorded[1], 5);
  // First backoff of the SECOND Put: the successful third attempt of the
  // first Put reset the streak, so this is streak 1 again — [2, 4] ms. An
  // unreset streak of 3 would have slept at least 10 ms.
  EXPECT_GE(recorded[2], 1);
  EXPECT_LE(recorded[2], 4);
  EXPECT_EQ(stats->dropped_requests, 3u);
  server->Stop();
}

// Identical seeds replay identical schedules: fault tallies, retry
// counters and backoff sequences all match between two runs.
TEST(NetFault, FixedSeedReplaysExactSchedule) {
  auto run = [](std::uint64_t seed) {
    FaultSpec spec;
    spec.drop_request = 0.15;
    spec.reset = 0.10;
    FaultScenario scenario(spec, seed, /*max_attempts=*/8);
    for (int i = 0; i < 15; ++i) {
      (void)scenario.remote().Put("o" + std::to_string(i), Bytes(64, 1));
    }
    struct Outcome {
      std::uint64_t dropped, resets, clean;
      std::uint64_t retries, reconnects;
      std::vector<int> sleeps;
    };
    return Outcome{scenario.fault_stats().dropped_requests,
                   scenario.fault_stats().resets,
                   scenario.fault_stats().clean,
                   scenario.counters().retries,
                   scenario.counters().reconnects,
                   scenario.sleeps()};
  };

  const auto a = run(2024);
  const auto b = run(2024);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.sleeps, b.sleeps);
  EXPECT_GT(a.dropped + a.resets, 0u);

  const auto c = run(2025); // a different seed draws a different schedule
  EXPECT_NE(a.sleeps, c.sleeps);
}

} // namespace
} // namespace nexus::net
