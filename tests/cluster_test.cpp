// ClusterBackend unit + convergence tests over in-memory shards: ring
// placement, envelope codec, quorum reads/writes with sloppy-quorum
// failover, tombstone deletes, health ejection/reinstatement, read-repair
// and rebalancing — including a rebalance-under-concurrent-writes soak.
// Every shard is a MemBackend behind a deterministic kill switch, so no
// sockets and no real clocks are involved.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "cluster/cluster_backend.hpp"
#include "cluster/ring.hpp"
#include "storage/backend.hpp"

namespace nexus::cluster {
namespace {

// A MemBackend behind a kill switch: while down, every operation fails
// like a dead TCP peer (kIOError / empty), which is exactly what the
// cluster's health tracker keys on.
class SwitchableBackend final : public storage::StorageBackend {
 public:
  SwitchableBackend(std::shared_ptr<storage::MemBackend> inner,
                    std::shared_ptr<std::atomic<bool>> down,
                    std::shared_ptr<std::atomic<std::uint64_t>> calls)
      : inner_(std::move(inner)), down_(std::move(down)),
        calls_(std::move(calls)) {}

  Result<Bytes> Get(const std::string& name) override {
    calls_->fetch_add(1);
    if (down_->load()) return Error(ErrorCode::kIOError, "shard down");
    return inner_->Get(name);
  }
  Status Put(const std::string& name, ByteSpan data) override {
    calls_->fetch_add(1);
    if (down_->load()) return Error(ErrorCode::kIOError, "shard down");
    return inner_->Put(name, data);
  }
  Status Delete(const std::string& name) override {
    calls_->fetch_add(1);
    if (down_->load()) return Error(ErrorCode::kIOError, "shard down");
    return inner_->Delete(name);
  }
  bool Exists(const std::string& name) override {
    calls_->fetch_add(1);
    if (down_->load()) return false;
    return inner_->Exists(name);
  }
  std::vector<std::string> List(const std::string& prefix) override {
    calls_->fetch_add(1);
    if (down_->load()) return {};
    return inner_->List(prefix);
  }
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override {
    // Fail at OPEN when down, like a dead TCP peer refusing the dial —
    // the streaming cluster put keys its slide-past on exactly that.
    calls_->fetch_add(1);
    if (down_->load()) return Error(ErrorCode::kIOError, "shard down");
    return inner_->OpenPutStream(name);
  }

 private:
  std::shared_ptr<storage::MemBackend> inner_;
  std::shared_ptr<std::atomic<bool>> down_;
  std::shared_ptr<std::atomic<std::uint64_t>> calls_;
};

// One shard's test-side handles.
struct TestShard {
  std::string id;
  std::shared_ptr<storage::MemBackend> mem =
      std::make_shared<storage::MemBackend>();
  std::shared_ptr<std::atomic<bool>> down =
      std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<std::uint64_t>> calls =
      std::make_shared<std::atomic<std::uint64_t>>(0);

  ShardSpec spec() const {
    return ShardSpec{
        id,
        [mem = mem, down = down, calls = calls]()
            -> Result<std::unique_ptr<storage::StorageBackend>> {
          return std::unique_ptr<storage::StorageBackend>(
              std::make_unique<SwitchableBackend>(mem, down, calls));
        },
        /*revive=*/{}};
  }
};

class ClusterFixture {
 public:
  explicit ClusterFixture(std::size_t n, ClusterOptions options = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      TestShard shard;
      shard.id = "shard-" + std::to_string(i);
      shards_.push_back(std::move(shard));
    }
    std::vector<ShardSpec> specs;
    for (const TestShard& s : shards_) specs.push_back(s.spec());
    if (options.replication == 0) options.replication = 2;
    if (options.writer_id == 0) options.writer_id = 7;
    if (!options.now_ms) {
      options.now_ms = [this] { return clock_.load(); }; // deterministic
    }
    options.background_rebalance = false; // tests drive RebalanceNow()
    cluster_ = ClusterBackend::Create(std::move(specs), options).value();
  }

  ClusterBackend& cluster() { return *cluster_; }
  TestShard& shard(std::size_t i) { return shards_[i]; }
  std::size_t size() const { return shards_.size(); }
  void AdvanceClock(std::uint64_t ms) { clock_.fetch_add(ms); }

  /// How many shards' stores hold `name` (as a raw envelope object).
  std::size_t ReplicaCount(const std::string& name) {
    std::size_t n = 0;
    for (TestShard& s : shards_) {
      if (s.mem->Exists(name)) ++n;
    }
    return n;
  }

  /// Decodes shard i's replica of `name` (must exist and decode).
  Envelope ReplicaEnvelope(std::size_t i, const std::string& name) {
    const Bytes raw = shards_[i].mem->Get(name).value();
    return DecodeEnvelope(ByteSpan(raw.data(), raw.size())).value();
  }

 private:
  std::vector<TestShard> shards_;
  std::atomic<std::uint64_t> clock_{1'000'000};
  std::unique_ptr<ClusterBackend> cluster_;
};

// ---- ring -------------------------------------------------------------------

TEST(HashRingTest, SpreadsKeysAcrossNodes) {
  HashRing ring(64);
  for (int i = 0; i < 4; ++i) ring.AddNode("node-" + std::to_string(i));
  std::map<std::string, int> owned;
  for (int k = 0; k < 1000; ++k) {
    ++owned[ring.Owner("key-" + std::to_string(k))];
  }
  ASSERT_EQ(owned.size(), 4u); // every node owns something
  for (const auto& [node, count] : owned) {
    // With 64 vnodes the split stays within a loose band of fair share.
    EXPECT_GT(count, 50) << node;
    EXPECT_LT(count, 600) << node;
  }
}

TEST(HashRingTest, MembershipChangeOnlyMovesTheLeavingNodesKeys) {
  HashRing ring(64);
  for (int i = 0; i < 4; ++i) ring.AddNode("node-" + std::to_string(i));
  std::map<std::string, std::string> before;
  for (int k = 0; k < 500; ++k) {
    const std::string key = "key-" + std::to_string(k);
    before[key] = ring.Owner(key);
  }
  ring.RemoveNode("node-2");
  for (const auto& [key, owner] : before) {
    if (owner == "node-2") continue;
    EXPECT_EQ(ring.Owner(key), owner) << key; // placement is stable
  }
  // And adding it back restores the original placement exactly.
  ring.AddNode("node-2");
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.Owner(key), owner) << key;
  }
}

TEST(HashRingTest, SuccessorsAreDistinctAndOrdered) {
  HashRing ring(32);
  ring.AddNode("a");
  ring.AddNode("b");
  ring.AddNode("c");
  const auto succ = ring.Successors("some-object", 3);
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(std::set<std::string>(succ.begin(), succ.end()).size(), 3u);
  // Asking for more than the ring holds caps at the node count.
  EXPECT_EQ(ring.Successors("some-object", 10).size(), 3u);
  EXPECT_EQ(succ.front(), ring.Owner("some-object"));
}

TEST(HashRingTest, DiffRingsPinsExactlyTheKeysWhoseOwnersChanged) {
  HashRing before(32);
  for (int i = 0; i < 4; ++i) before.AddNode("node-" + std::to_string(i));
  HashRing after = before;
  after.AddNode("node-new");

  // An identical ring moves nothing.
  EXPECT_TRUE(DiffRings(before, before, 2).empty());

  const std::vector<MovedArc> moved = DiffRings(before, after, 2);
  ASSERT_FALSE(moved.empty());
  for (const MovedArc& arc : moved) {
    EXPECT_NE(std::set<std::string>(arc.from.begin(), arc.from.end()),
              std::set<std::string>(arc.to.begin(), arc.to.end()));
  }

  // The arcs are a precise characterization: a key's hash point lands in
  // some moved arc if and only if its owner SET changed.
  const auto contains = [](const MovedArc& arc, std::uint64_t p) {
    if (arc.begin == arc.end) return true; // full circle
    if (arc.begin < arc.end) return p > arc.begin && p <= arc.end;
    return p > arc.begin || p <= arc.end; // wraps through zero
  };
  for (int k = 0; k < 400; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const std::uint64_t point = HashRing::HashPoint(key);
    bool in_arc = false;
    for (const MovedArc& arc : moved) {
      if (contains(arc, point)) in_arc = true;
    }
    const auto b = before.Successors(key, 2);
    const auto a = after.Successors(key, 2);
    const bool changed = std::set<std::string>(b.begin(), b.end()) !=
                         std::set<std::string>(a.begin(), a.end());
    EXPECT_EQ(in_arc, changed) << key;
  }
}

// ---- envelope ---------------------------------------------------------------

TEST(EnvelopeTest, RoundTripsAndOrders) {
  Envelope env;
  env.version = 42;
  env.writer = 9;
  env.payload = Bytes{1, 2, 3};
  const Bytes wire = EncodeEnvelope(env);
  const Envelope back = DecodeEnvelope(ByteSpan(wire.data(), wire.size())).value();
  EXPECT_FALSE(back.tombstone);
  EXPECT_EQ(back.version, 42u);
  EXPECT_EQ(back.writer, 9u);
  EXPECT_EQ(back.payload, env.payload);

  Envelope tomb;
  tomb.tombstone = true;
  tomb.version = 43;
  const Bytes twire = EncodeEnvelope(tomb);
  EXPECT_TRUE(DecodeEnvelope(ByteSpan(twire.data(), twire.size()))
                  .value()
                  .tombstone);

  // (version, writer) lexicographic order.
  Envelope a, b;
  a.version = 5;
  b.version = 4;
  EXPECT_TRUE(EnvelopeNewer(a, b));
  b.version = 5;
  a.writer = 2;
  b.writer = 1;
  EXPECT_TRUE(EnvelopeNewer(a, b));
  EXPECT_FALSE(EnvelopeNewer(b, a));
  b.writer = 2;
  EXPECT_FALSE(EnvelopeNewer(a, b)); // equal is not newer
}

TEST(EnvelopeTest, StreamHeaderPlusRawPayloadDecodes) {
  // The streaming put emits the envelope header BEFORE the payload length
  // is known: header + raw payload bytes must decode like the buffered
  // encoding.
  Envelope env;
  env.version = 77;
  env.writer = 9;
  env.payload = Bytes{10, 20, 30, 40, 50};
  Bytes wire = EncodeEnvelopeStreamHeader(env);
  const std::size_t header_size = wire.size();
  wire.insert(wire.end(), env.payload.begin(), env.payload.end());
  const Envelope back =
      DecodeEnvelope(ByteSpan(wire.data(), wire.size())).value();
  EXPECT_FALSE(back.tombstone);
  EXPECT_EQ(back.version, 77u);
  EXPECT_EQ(back.writer, 9u);
  EXPECT_EQ(back.payload, env.payload);

  // A header with nothing after it is a valid zero-byte object.
  const Bytes bare(wire.begin(), wire.begin() + header_size);
  EXPECT_TRUE(DecodeEnvelope(ByteSpan(bare.data(), bare.size()))
                  .value()
                  .payload.empty());
}

TEST(EnvelopeTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeEnvelope(ByteSpan()).ok());
  const Bytes junk{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(DecodeEnvelope(ByteSpan(junk.data(), junk.size())).ok());
  Envelope env;
  env.payload = Bytes{1};
  Bytes wire = EncodeEnvelope(env);
  wire.push_back(0); // trailing byte
  EXPECT_FALSE(DecodeEnvelope(ByteSpan(wire.data(), wire.size())).ok());
}

// ---- quorum backend contract ------------------------------------------------

TEST(ClusterBackendTest, StorageContractOverThreeShards) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();
  EXPECT_EQ(c.replication(), 2u);
  EXPECT_EQ(c.write_quorum(), 2u);
  EXPECT_EQ(c.read_quorum(), 2u);

  EXPECT_EQ(c.Get("missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(c.Delete("missing").code(), ErrorCode::kNotFound);
  EXPECT_FALSE(c.Exists("missing"));

  const Bytes data{10, 20, 30};
  ASSERT_TRUE(c.Put("obj", ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(c.Get("obj").value(), data);
  EXPECT_TRUE(c.Exists("obj"));
  EXPECT_EQ(fx.ReplicaCount("obj"), 2u); // exactly R replicas placed

  // Overwrite wins.
  const Bytes data2{99};
  ASSERT_TRUE(c.Put("obj", ByteSpan(data2.data(), data2.size())).ok());
  EXPECT_EQ(c.Get("obj").value(), data2);

  // Streamed put commits through the same quorum path.
  auto stream = c.OpenPutStream("streamed").value();
  ASSERT_TRUE(stream->Append(ByteSpan(data.data(), data.size())).ok());
  ASSERT_TRUE(stream->Append(ByteSpan(data2.data(), data2.size())).ok());
  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(c.Get("streamed").value(), Concat(data, data2));

  // List sees both, sorted, and respects prefixes.
  const auto all = c.List("");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "obj");
  EXPECT_EQ(all[1], "streamed");
  EXPECT_TRUE(c.List("zzz").empty());

  // Delete is a quorum tombstone: gone from every read surface even
  // though shard stores still hold the marker.
  ASSERT_TRUE(c.Delete("obj").ok());
  EXPECT_EQ(c.Get("obj").status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(c.Exists("obj"));
  EXPECT_EQ(c.List("").size(), 1u);
  EXPECT_EQ(c.Delete("obj").code(), ErrorCode::kNotFound); // idempotent-ish
  EXPECT_GE(fx.ReplicaCount("obj"), 2u); // tombstone is replicated

  const ClusterCounters counters = c.counters();
  EXPECT_GT(counters.quorum_writes, 0u);
  EXPECT_GT(counters.quorum_reads, 0u);
  EXPECT_GT(counters.tombstones_written, 0u);
  EXPECT_EQ(counters.quorum_failures, 0u);
}

TEST(ClusterBackendTest, MultiGetMatchesGet) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();
  for (int i = 0; i < 8; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(
        c.Put("k" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok());
  }
  ASSERT_TRUE(c.Delete("k3").ok());
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("k" + std::to_string(i));
  names.push_back("never-existed");
  const auto results = c.MultiGet(names);
  ASSERT_EQ(results.size(), names.size());
  for (int i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_EQ(results[i].status().code(), ErrorCode::kNotFound);
    } else {
      EXPECT_EQ(results[i].value(), Bytes{static_cast<std::uint8_t>(i)}) << i;
    }
  }
  EXPECT_EQ(results.back().status().code(), ErrorCode::kNotFound);
}

// ---- sloppy quorum / failover ----------------------------------------------

TEST(ClusterBackendTest, WritesSurviveOneDeadShard) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();
  fx.shard(1).down->store(true);

  // Every write must commit: owners that include the dead shard slide
  // down to the third successor (sloppy quorum).
  for (int i = 0; i < 40; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 7};
    ASSERT_TRUE(
        c.Put("key-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(c.Get("key-" + std::to_string(i)).value(),
              (Bytes{static_cast<std::uint8_t>(i), 7}))
        << i;
  }
  const ClusterCounters counters = c.counters();
  EXPECT_EQ(counters.quorum_failures, 0u);
  EXPECT_GT(counters.failovers, 0u); // some keys' owner sets hit shard-1
  EXPECT_GT(counters.shard_failures, 0u);
}

TEST(ClusterBackendTest, QuorumFailureWhenTooManyShardsDead) {
  ClusterOptions options;
  options.eject_after = 1000000; // keep shards un-ejected: pure quorum math
  ClusterFixture fx(3, options);
  ClusterBackend& c = fx.cluster();
  fx.shard(0).down->store(true);
  fx.shard(1).down->store(true);
  fx.shard(2).down->store(true);

  const Bytes data{1};
  const Status put = c.Put("k", ByteSpan(data.data(), data.size()));
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.code(), ErrorCode::kIOError);
  EXPECT_EQ(c.Get("k").status().code(), ErrorCode::kIOError);
  EXPECT_GE(c.counters().quorum_failures, 2u);
}

// ---- health -----------------------------------------------------------------

TEST(ClusterBackendTest, EjectionAndBackoffGatedReinstatement) {
  ClusterOptions options;
  options.replication = 1;
  options.eject_after = 3;
  options.reinstate_backoff_base_ms = 100;
  ClusterFixture fx(1, options);
  ClusterBackend& c = fx.cluster();
  fx.shard(0).down->store(true);

  const Bytes data{1};
  // Three failed ops trip the ejection threshold.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  }
  auto health = c.Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_TRUE(health[0].ejected);
  EXPECT_EQ(c.counters().shards_ejected, 1u);

  // While ejected and inside the backoff window, ops fail WITHOUT
  // touching the shard at all.
  const std::uint64_t calls_before = fx.shard(0).calls->load();
  EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(fx.shard(0).calls->load(), calls_before);

  // A failed probe after the backoff expires doubles the wait.
  fx.AdvanceClock(150);
  EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  fx.AdvanceClock(150); // 100 * 2^1 = 200ms still pending
  const std::uint64_t calls_mid = fx.shard(0).calls->load();
  EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(fx.shard(0).calls->load(), calls_mid); // gated, no probe

  // Shard recovers; once the backoff expires one probe reinstates it.
  fx.shard(0).down->store(false);
  fx.AdvanceClock(10'000);
  EXPECT_TRUE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  health = c.Health();
  EXPECT_FALSE(health[0].ejected);
  EXPECT_EQ(c.counters().shards_reinstated, 1u);
  EXPECT_EQ(c.Get("k").value(), data);
}

// ---- read repair ------------------------------------------------------------

TEST(ClusterBackendTest, ReadRepairConvergesAStaleReplica) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();

  const Bytes v1{1};
  ASSERT_TRUE(c.Put("obj", ByteSpan(v1.data(), v1.size())).ok());

  // Find one shard holding the replica and wipe it behind the cluster's
  // back (a restarted-empty shard).
  std::size_t victim = fx.size();
  for (std::size_t i = 0; i < fx.size(); ++i) {
    if (fx.shard(i).mem->Exists("obj")) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, fx.size());
  ASSERT_TRUE(fx.shard(victim).mem->Delete("obj").ok());
  ASSERT_EQ(fx.ReplicaCount("obj"), 1u);

  // The quorum read sees the divergence and repairs it in place.
  EXPECT_EQ(c.Get("obj").value(), v1);
  EXPECT_EQ(fx.ReplicaCount("obj"), 2u);
  EXPECT_GT(c.counters().read_repairs, 0u);
  EXPECT_EQ(fx.ReplicaEnvelope(victim, "obj").payload, v1);

  // Repair copies the envelope VERBATIM: same version on both replicas.
  std::vector<Envelope> envs;
  for (std::size_t i = 0; i < fx.size(); ++i) {
    if (fx.shard(i).mem->Exists("obj")) {
      envs.push_back(fx.ReplicaEnvelope(i, "obj"));
    }
  }
  ASSERT_EQ(envs.size(), 2u);
  EXPECT_EQ(envs[0].version, envs[1].version);
  EXPECT_EQ(envs[0].writer, envs[1].writer);
}

// ---- rebalancing ------------------------------------------------------------

TEST(ClusterBackendTest, AddShardMigratesItsArcsAndPurgesNonOwners) {
  ClusterFixture fx(2);
  ClusterBackend& c = fx.cluster();
  for (int i = 0; i < 30; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(
        c.Put("k" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok());
  }
  // With 2 shards and R=2 every object lives on both.
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(fx.ReplicaCount("k" + std::to_string(i)), 2u);
  }

  TestShard extra;
  extra.id = "shard-extra";
  ASSERT_TRUE(c.AddShard(extra.spec()).ok());
  c.RebalanceNow();

  // Every object still reads back, still has exactly R replicas, and the
  // new shard took over some arcs.
  std::size_t on_extra = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string name = "k" + std::to_string(i);
    EXPECT_EQ(c.Get(name).value(), Bytes{static_cast<std::uint8_t>(i)}) << i;
    std::size_t replicas = extra.mem->Exists(name) ? 1 : 0;
    replicas += fx.ReplicaCount(name);
    EXPECT_EQ(replicas, 2u) << name;
    if (extra.mem->Exists(name)) ++on_extra;
  }
  EXPECT_GT(on_extra, 0u);
  const ClusterCounters counters = c.counters();
  EXPECT_GT(counters.rebalance_objects_moved, 0u);
  EXPECT_GT(counters.rebalance_objects_purged, 0u);
  // A membership change now runs an arc-bounded delta pass, not a full
  // scan of every shard.
  EXPECT_GT(counters.rebalance_delta_passes, 0u);
  EXPECT_EQ(counters.rebalance_passes, 0u);
}

TEST(ClusterBackendTest, RemoveShardRestoresReplicationElsewhere) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();
  for (int i = 0; i < 30; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 5};
    ASSERT_TRUE(
        c.Put("k" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok());
  }
  ASSERT_TRUE(c.RemoveShard("shard-2").ok());
  c.RebalanceNow();
  for (int i = 0; i < 30; ++i) {
    const std::string name = "k" + std::to_string(i);
    EXPECT_EQ(c.Get(name).value(),
              (Bytes{static_cast<std::uint8_t>(i), 5}))
        << i;
    // Both surviving shards hold every object now (R=2 over 2 shards).
    EXPECT_TRUE(fx.shard(0).mem->Exists(name)) << name;
    EXPECT_TRUE(fx.shard(1).mem->Exists(name)) << name;
  }
  EXPECT_FALSE(c.RemoveShard("shard-2").ok()); // already gone
}

// ---- streaming replicated puts ---------------------------------------------

TEST(ClusterBackendTest, StreamingPutReplicatesAndBoundsClientBuffering) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();

  auto stream = c.OpenUnbufferedPutStream("big").value();
  Bytes expect;
  for (int seg = 0; seg < 16; ++seg) {
    const Bytes chunk(4096, static_cast<std::uint8_t>(seg));
    ASSERT_TRUE(stream->Append(ByteSpan(chunk.data(), chunk.size())).ok())
        << seg;
    expect.insert(expect.end(), chunk.begin(), chunk.end());
  }
  ASSERT_TRUE(stream->Commit().ok());

  EXPECT_EQ(c.Get("big").value(), expect);
  EXPECT_EQ(fx.ReplicaCount("big"), 2u);
  const ClusterCounters counters = c.counters();
  EXPECT_EQ(counters.stream_puts, 1u);
  EXPECT_EQ(counters.quorum_failures, 0u);
  EXPECT_EQ(counters.handoff_hints_recorded, 0u);
  // The O(window) bound: across a 64 KiB object the cluster layer never
  // buffered more than the fixed-size envelope header.
  EXPECT_GT(counters.stream_put_buffered_high_water_bytes, 0u);
  EXPECT_LT(counters.stream_put_buffered_high_water_bytes, 64u);

  // A zero-byte streamed object commits too.
  auto empty = c.OpenUnbufferedPutStream("empty").value();
  ASSERT_TRUE(empty->Commit().ok());
  EXPECT_EQ(c.Get("empty").value(), Bytes{});

  // An aborted stream leaves no trace.
  auto aborted = c.OpenUnbufferedPutStream("aborted").value();
  const Bytes junk{1, 2, 3};
  ASSERT_TRUE(aborted->Append(ByteSpan(junk.data(), junk.size())).ok());
  aborted->Abort();
  EXPECT_EQ(c.Get("aborted").status().code(), ErrorCode::kNotFound);
}

// ---- hinted handoff ---------------------------------------------------------

TEST(ClusterBackendTest, HandoffHintsDrainToTheReturnedOwner) {
  ClusterOptions options;
  options.eject_after = 2;
  options.reinstate_backoff_base_ms = 10;
  ClusterFixture fx(3, options);
  ClusterBackend& c = fx.cluster();
  fx.shard(1).down->store(true);

  // Streamed writes slide past the dead owner (sloppy quorum) and leave
  // a durable hint for it beside a committed replica.
  for (int i = 0; i < 40; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 42};
    auto stream = c.OpenUnbufferedPutStream("h-" + std::to_string(i)).value();
    ASSERT_TRUE(stream->Append(ByteSpan(data.data(), data.size())).ok()) << i;
    ASSERT_TRUE(stream->Commit().ok()) << i;
  }
  const ClusterCounters after_writes = c.counters();
  EXPECT_EQ(after_writes.quorum_failures, 0u);
  EXPECT_GT(after_writes.failovers, 0u);
  EXPECT_GT(after_writes.handoff_hints_recorded, 0u);

  // Hint markers live in the control namespace: invisible to List.
  for (const std::string& name : c.List("")) {
    EXPECT_EQ(name.rfind("h-", 0), 0u) << name;
  }

  // The shard returns; the drainer replays everything it missed, with
  // zero read-repair involvement.
  fx.shard(1).down->store(false);
  fx.AdvanceClock(60'000);
  c.DrainHandoffNow();

  const ClusterCounters after_drain = c.counters();
  EXPECT_GT(after_drain.handoff_hints_replayed, 0u);
  EXPECT_EQ(after_drain.read_repairs, 0u);
  for (std::size_t s = 0; s < fx.size(); ++s) {
    EXPECT_TRUE(fx.shard(s).mem->List(kHandoffHintPrefix).empty()) << s;
  }

  // Owner convergence: every key the returned shard owns is on it now
  // (mirror ring: same vnode count, same ids as the fixture's cluster).
  HashRing ring(64);
  for (int s = 0; s < 3; ++s) ring.AddNode("shard-" + std::to_string(s));
  for (int i = 0; i < 40; ++i) {
    const std::string name = "h-" + std::to_string(i);
    const std::vector<std::string> owners = ring.Successors(name, 2);
    if (std::find(owners.begin(), owners.end(), "shard-1") != owners.end()) {
      EXPECT_TRUE(fx.shard(1).mem->Exists(name)) << name;
    }
    EXPECT_EQ(c.Get(name).value(), (Bytes{static_cast<std::uint8_t>(i), 42}))
        << name;
  }
  EXPECT_EQ(c.counters().read_repairs, 0u);
}

// ---- delta rebalancing ------------------------------------------------------

TEST(ClusterBackendTest, DeltaRebalanceTouchesOnlyMovedArcs) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();
  constexpr int kKeys = 80;
  for (int i = 0; i < kKeys; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 1};
    ASSERT_TRUE(
        c.Put("k" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok());
  }

  // Mirror the cluster's ring to compute, independently, which keys the
  // new shard changes the owner set of.
  HashRing before(64);
  for (int s = 0; s < 3; ++s) before.AddNode("shard-" + std::to_string(s));
  HashRing after = before;
  after.AddNode("shard-extra");
  std::set<std::string> moved;
  for (int i = 0; i < kKeys; ++i) {
    const std::string name = "k" + std::to_string(i);
    const auto b = before.Successors(name, 2);
    const auto a = after.Successors(name, 2);
    if (std::set<std::string>(b.begin(), b.end()) !=
        std::set<std::string>(a.begin(), a.end())) {
      moved.insert(name);
    }
  }
  ASSERT_FALSE(moved.empty());
  ASSERT_LT(moved.size(), static_cast<std::size_t>(kKeys)); // some untouched

  TestShard extra;
  extra.id = "shard-extra";
  ASSERT_TRUE(c.AddShard(extra.spec()).ok());
  c.RebalanceNow();

  const ClusterCounters counters = c.counters();
  EXPECT_EQ(counters.rebalance_delta_passes, 1u);
  EXPECT_EQ(counters.rebalance_passes, 0u);
  // The counter pin: copy RPCs were issued ONLY for keys in moved arcs —
  // one copy each, onto the new shard — and an untouched key never even
  // landed there.
  EXPECT_EQ(counters.rebalance_objects_moved, moved.size());
  EXPECT_GT(counters.rebalance_bytes_moved, 0u);
  for (int i = 0; i < kKeys; ++i) {
    const std::string name = "k" + std::to_string(i);
    EXPECT_EQ(extra.mem->Exists(name), moved.contains(name)) << name;
  }
  // And placement stays correct for every key.
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(c.Get("k" + std::to_string(i)).value(),
              (Bytes{static_cast<std::uint8_t>(i), 1}))
        << i;
  }
}

// ---- reinstatement revive ---------------------------------------------------

TEST(ClusterBackendTest, ReinstatementSchedulesTheReviveHook) {
  TestShard s;
  s.id = "only";
  ShardSpec spec = s.spec();
  auto revived = std::make_shared<std::atomic<int>>(0);
  spec.revive = [revived](storage::StorageBackend&) {
    revived->fetch_add(1);
    return Status::Ok();
  };
  ClusterOptions options;
  options.replication = 1;
  options.writer_id = 7;
  options.eject_after = 2;
  options.reinstate_backoff_base_ms = 10;
  options.background_rebalance = false;
  std::atomic<std::uint64_t> clock{1'000'000};
  options.now_ms = [&clock] { return clock.load(); };
  auto cluster = ClusterBackend::Create({spec}, options);
  ASSERT_TRUE(cluster.ok());
  ClusterBackend& c = **cluster;

  const Bytes data{5};
  ASSERT_TRUE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  s.down->store(true);
  EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  EXPECT_FALSE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(c.counters().shards_ejected, 1u);

  s.down->store(false);
  clock.fetch_add(60'000);
  ASSERT_TRUE(c.Put("k", ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(c.counters().shards_reinstated, 1u);
  // The hook is queued for the maintenance pass, not run inline on the
  // reinstating op's thread.
  EXPECT_EQ(revived->load(), 0);
  c.RebalanceNow();
  EXPECT_EQ(revived->load(), 1);
  // One-shot: the next pass does not re-run it.
  c.RebalanceNow();
  EXPECT_EQ(revived->load(), 1);
}

// Writers keep mutating while the migrator runs and membership changes:
// nothing is lost, and the newest value always wins. (TSan-friendly: the
// interesting races are real thread interleavings.)
TEST(ClusterBackendTest, RebalanceUnderConcurrentWritesSoak) {
  ClusterFixture fx(3);
  ClusterBackend& c = fx.cluster();

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 8;
  constexpr int kRounds = 25;
  std::atomic<bool> stop{false};

  std::thread migrator([&] {
    TestShard extra;
    extra.id = "soak-extra";
    ASSERT_TRUE(c.AddShard(extra.spec()).ok());
    while (!stop.load()) {
      c.RebalanceNow();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 1; round <= kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string name =
              "soak-" + std::to_string(w) + "-" + std::to_string(k);
          const Bytes data{static_cast<std::uint8_t>(round),
                           static_cast<std::uint8_t>(w),
                           static_cast<std::uint8_t>(k)};
          ASSERT_TRUE(c.Put(name, ByteSpan(data.data(), data.size())).ok());
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  migrator.join();
  c.RebalanceNow(); // quiesced convergence pass

  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string name =
          "soak-" + std::to_string(w) + "-" + std::to_string(k);
      const Bytes expect{static_cast<std::uint8_t>(kRounds),
                         static_cast<std::uint8_t>(w),
                         static_cast<std::uint8_t>(k)};
      EXPECT_EQ(c.Get(name).value(), expect) << name;
    }
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// ---- endpoint parsing -------------------------------------------------------

TEST(ClusterConfigTest, ParsesEndpointLists) {
  const auto list = ParseEndpointList(" 127.0.0.1:7001, 127.0.0.1:7002 ,\n"
                                      "example.test:9\n");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "127.0.0.1:7001");
  EXPECT_EQ(list[2], "example.test:9");
  EXPECT_TRUE(ParseEndpointList("").empty());

  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(SplitHostPort("10.0.0.1:7005", &host, &port));
  EXPECT_EQ(host, "10.0.0.1");
  EXPECT_EQ(port, 7005);
  EXPECT_FALSE(SplitHostPort("nohost", &host, &port));
  EXPECT_FALSE(SplitHostPort(":70", &host, &port));
  EXPECT_FALSE(SplitHostPort("h:", &host, &port));
  EXPECT_FALSE(SplitHostPort("h:99999", &host, &port));
}

TEST(ClusterConfigTest, CreateValidatesItsInputs) {
  EXPECT_FALSE(ClusterBackend::Create({}, {}).ok());
  ClusterOptions options;
  options.replication = 2;
  options.write_quorum = 5; // larger than the shard count
  TestShard s;
  s.id = "only";
  EXPECT_FALSE(ClusterBackend::Create({s.spec()}, options).ok());
  EXPECT_FALSE(
      ClusterBackend::Connect("definitely not an endpoint", {}, {}).ok());
}

} // namespace
} // namespace nexus::cluster
