// Tests for Result, hex, UUID and the bounds-checked serializer.
#include <gtest/gtest.h>

#include "common/base64.hpp"
#include "common/hex.hpp"
#include "common/result.hpp"
#include "common/serial.hpp"
#include "common/uuid.hpp"

namespace nexus {
namespace {

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Error(ErrorCode::kNotFound, "missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Error(ErrorCode::kInvalidArgument, "odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NEXUS_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, PropagationMacros) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok()); // 6/2 = 3 is odd
  EXPECT_EQ(Quarter(6).status().code(), ErrorCode::kInvalidArgument);
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  const std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001deadbeefff");
  EXPECT_EQ(HexDecode(hex).value(), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());  // odd length
  EXPECT_FALSE(HexDecode("zz").ok());   // non-hex
  EXPECT_TRUE(HexDecode("").value().empty());
}

TEST(Uuid, NilAndRoundTrip) {
  EXPECT_TRUE(Uuid().IsNil());
  ByteArray<16> raw{};
  raw[0] = 0xab;
  raw[15] = 0xcd;
  const Uuid u(raw);
  EXPECT_FALSE(u.IsNil());
  EXPECT_EQ(u.ToString().size(), 32u);
  EXPECT_EQ(Uuid::Parse(u.ToString()).value(), u);
}

TEST(Uuid, FromBytesValidatesLength) {
  EXPECT_FALSE(Uuid::FromBytes(Bytes(15)).ok());
  EXPECT_FALSE(Uuid::FromBytes(Bytes(17)).ok());
  EXPECT_TRUE(Uuid::FromBytes(Bytes(16)).ok());
}

TEST(Serial, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.Str("hello");
  w.Var(Bytes{1, 2, 3});
  ByteArray<16> raw{};
  raw[7] = 9;
  w.Id(Uuid(raw));

  Reader r(w.bytes());
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_EQ(r.Var().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Id().value(), Uuid(raw));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serial, TruncationDetected) {
  Writer w;
  w.U32(42);
  Reader r(ByteSpan(w.bytes().data(), 3)); // cut short
  EXPECT_FALSE(r.U32().ok());
  EXPECT_EQ(r.U32().status().code(), ErrorCode::kOutOfRange);
}

TEST(Serial, CorruptLengthPrefixRejected) {
  // A hostile length prefix must not cause a huge allocation.
  Writer w;
  w.U32(0xffffffff);
  Reader r(w.bytes());
  EXPECT_FALSE(r.Var().ok());
}

TEST(Serial, VarLengthLimitEnforced) {
  Writer w;
  w.Var(Bytes(100, 7));
  Reader r(w.bytes());
  EXPECT_FALSE(r.Var(/*max_len=*/50).ok());
}


TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(AsBytes("")), "");
  EXPECT_EQ(Base64Encode(AsBytes("f")), "Zg==");
  EXPECT_EQ(Base64Encode(AsBytes("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(AsBytes("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(AsBytes("foob")), "Zm9vYg==");
  EXPECT_EQ(Base64Encode(AsBytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode(AsBytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, RoundTripAllLengths) {
  Bytes data;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Base64Decode(Base64Encode(data)).value(), data) << i;
    data.push_back(static_cast<std::uint8_t>(i * 37 + 5));
  }
}

TEST(Base64, StrictDecoder) {
  EXPECT_FALSE(Base64Decode("Zg=").ok());    // bad length
  EXPECT_FALSE(Base64Decode("Zg!=").ok());   // bad character
  EXPECT_FALSE(Base64Decode("=Zg=").ok());   // misplaced padding
  EXPECT_FALSE(Base64Decode("Z===").ok());   // too much padding
  EXPECT_FALSE(Base64Decode("Zg==Zm8=").ok()); // padding mid-stream
  EXPECT_TRUE(Base64Decode("").value().empty());
}

TEST(Bytes, ConcatAndHelpers) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  EXPECT_EQ(Concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(ToString(AsBytes("xyz")), "xyz");

  Bytes z = {9, 9, 9};
  SecureZero(z);
  EXPECT_EQ(z, (Bytes{0, 0, 0}));
}

} // namespace
} // namespace nexus
