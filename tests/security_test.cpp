// The §VI attack suite: every malicious-server manipulation must be
// *detected* by the enclave (tamper-evidence), and confidentiality must
// hold against a server that reads everything.
#include <gtest/gtest.h>

#include <set>

#include "test_env.hpp"

namespace nexus {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();
    fs_ = machine_->nexus.get();
  }

  /// The attacker-visible name of a path's metadata object.
  std::string MetaObjectOf(const std::string& path) {
    return "nx/" + fs_->Lookup(path)->uuid.ToString();
  }

  /// Re-mounts with a completely cold enclave (fresh session, as a victim
  /// coming back online would).
  void ColdRestart() {
    ASSERT_TRUE(fs_->Unmount().ok());
    machine_->afs->FlushCache();
    fresh_ = std::make_unique<core::NexusClient>(*machine_->runtime,
                                                 *machine_->afs,
                                                 world_.intel().root_public_key());
    ASSERT_TRUE(
        fresh_->Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
            .ok());
    fs_ = fresh_.get();
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient* fs_ = nullptr;
  std::unique_ptr<core::NexusClient> fresh_;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(AttackTest, MetadataCiphertextTamperDetected) {
  ASSERT_TRUE(fs_->Mkdir("d").ok());
  ASSERT_TRUE(fs_->WriteFile("d/f", Bytes{1}).ok());
  const std::string obj = MetaObjectOf("d");

  Bytes blob = world_.server().AdversaryRead(obj).value();
  blob[blob.size() / 2] ^= 0x01;
  ASSERT_TRUE(world_.server().AdversaryWrite(obj, blob).ok());

  ColdRestart();
  const auto r = fs_->ReadFile("d/f");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(AttackTest, DataObjectTamperDetected) {
  ASSERT_TRUE(fs_->WriteFile("f", Bytes(100000, 0x55)).ok());
  // Find the (single) bulk data object.
  const auto names = machine_->afs->List("nxd/").value();
  ASSERT_EQ(names.size(), 1u);
  Bytes blob = world_.server().AdversaryRead(names[0]).value();
  blob[12345] ^= 0x80;
  ASSERT_TRUE(world_.server().AdversaryWrite(names[0], blob).ok());

  ColdRestart();
  const auto r = fs_->ReadFile("f");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(AttackTest, DataObjectTruncationDetected) {
  ASSERT_TRUE(fs_->WriteFile("f", Bytes(100000, 0x55)).ok());
  const auto names = machine_->afs->List("nxd/").value();
  ASSERT_EQ(names.size(), 1u);
  Bytes blob = world_.server().AdversaryRead(names[0]).value();
  blob.resize(blob.size() / 2);
  ASSERT_TRUE(world_.server().AdversaryWrite(names[0], blob).ok());
  ColdRestart();
  EXPECT_FALSE(fs_->ReadFile("f").ok());
}

TEST_F(AttackTest, DirectorySwapDetected) {
  // §VI-C: swapping two equivalently-encrypted directories must trip the
  // parent-uuid / self-uuid verification.
  ASSERT_TRUE(fs_->Mkdir("a").ok());
  ASSERT_TRUE(fs_->Mkdir("a/inner").ok());
  ASSERT_TRUE(fs_->Mkdir("b").ok());
  ASSERT_TRUE(fs_->WriteFile("a/inner/secret", Bytes{7}).ok());

  const std::string obj_a = MetaObjectOf("a/inner");
  const std::string obj_b = MetaObjectOf("b");
  ASSERT_TRUE(world_.server().AdversarySwap(obj_a, obj_b).ok());

  ColdRestart();
  EXPECT_FALSE(fs_->ListDir("b").ok());
  EXPECT_FALSE(fs_->ListDir("a/inner").ok());
}

TEST_F(AttackTest, DataObjectSwapDetected) {
  // Swapping two files' *data* objects: chunk AAD binds ciphertext to its
  // filenode uuid, so both reads must fail.
  ASSERT_TRUE(fs_->WriteFile("x", Bytes(5000, 1)).ok());
  ASSERT_TRUE(fs_->WriteFile("y", Bytes(5000, 2)).ok());
  const auto names = machine_->afs->List("nxd/").value();
  ASSERT_EQ(names.size(), 2u);
  ASSERT_TRUE(world_.server().AdversarySwap(names[0], names[1]).ok());

  ColdRestart();
  EXPECT_FALSE(fs_->ReadFile("x").ok());
  EXPECT_FALSE(fs_->ReadFile("y").ok());
}

TEST_F(AttackTest, MetadataRollbackDetectedWithinSession) {
  ASSERT_TRUE(fs_->Mkdir("d").ok());
  ASSERT_TRUE(fs_->Touch("d/v1").ok());
  const std::string obj = MetaObjectOf("d");
  const Bytes old_main = world_.server().AdversarySnapshot(obj).value();

  ASSERT_TRUE(fs_->Touch("d/v2").ok());
  // Server rolls the dirnode main object back to the pre-v2 state and
  // breaks callbacks so the client re-fetches.
  ASSERT_TRUE(world_.server().AdversaryRollback(obj, old_main).ok());
  world_.server().AdversaryInvalidateCallbacks(obj);
  fs_->enclave().EcallDropCaches();

  const auto r = fs_->ListDir("d");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(AttackTest, BucketRollbackDetectedAcrossSessions) {
  // Bucket-level rollback is caught even by a *cold* enclave because the
  // main object pins each bucket's MAC (§V-B). Buckets are copy-on-write,
  // so the attack is: serve an EARLIER bucket generation's bytes under the
  // current bucket object's name, keeping the fresh main in place.
  ASSERT_TRUE(fs_->Mkdir("d").ok());
  ASSERT_TRUE(fs_->Touch("d/file-one").ok());

  // Identify and snapshot the current (single) bucket of d: it is the one
  // metadata object that is neither d's main, the root structures, nor a
  // filenode — find it by diffing the object set before/after the touch.
  auto object_set = [&] {
    std::set<std::string> out;
    const auto names = machine_->afs->List("nx/").value();
    out.insert(names.begin(), names.end());
    return out;
  };
  const auto before = object_set();
  ASSERT_TRUE(fs_->Touch("d/file-two").ok());
  const auto after = object_set();

  // The touch rewrote d's bucket under a new UUID. Find the new bucket:
  // present now, absent before, and not a filenode (filenodes also got
  // created — exclude file-two's metadata object via its uuid).
  const std::string file_two_obj = MetaObjectOf("d/file-two");
  std::string new_bucket;
  for (const auto& name : after) {
    if (!before.contains(name) && name != file_two_obj) {
      new_bucket = name;
    }
  }
  ASSERT_FALSE(new_bucket.empty());

  // Snapshot the current bucket's bytes (the adversary keeps a copy), make
  // one more change — which rewrites the bucket under yet another UUID —
  // then serve the stale generation under the then-current bucket's name.
  const Bytes stale_bucket = world_.server().AdversaryRead(new_bucket).value();
  ASSERT_TRUE(fs_->Touch("d/file-three").ok());
  const auto final_set = object_set();
  const std::string file_three_obj = MetaObjectOf("d/file-three");
  std::string current_bucket;
  for (const auto& name : final_set) {
    if (!after.contains(name) && name != file_three_obj) current_bucket = name;
  }
  ASSERT_FALSE(current_bucket.empty());
  ASSERT_TRUE(
      world_.server().AdversaryWrite(current_bucket, stale_bucket).ok());

  ColdRestart();
  const auto r = fs_->ListDir("d");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(AttackTest, ServerLearnsNoPlaintext) {
  // Confidentiality sweep: write a recognizable corpus, then grep every
  // byte the server stores.
  const std::string needle = "CONFIDENTIAL-MARKER-0xDEADBEEF";
  ASSERT_TRUE(fs_->Mkdir("secret-project").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->WriteFile("secret-project/report-" + std::to_string(i),
                               AsBytes(needle + std::to_string(i)))
                    .ok());
  }
  const auto all_names = machine_->afs->List("").value();
  for (const auto& name : all_names) {
    EXPECT_EQ(name.find("secret"), std::string::npos) << name;
    const Bytes raw = world_.server().AdversaryRead(name).value();
    const std::string s(reinterpret_cast<const char*>(raw.data()), raw.size());
    EXPECT_EQ(s.find("CONFIDENTIAL"), std::string::npos) << name;
    EXPECT_EQ(s.find("report-"), std::string::npos) << name;
  }
}

TEST_F(AttackTest, StolenCiphertextUselessWithoutUserKey) {
  // The full attacker bundle from §VI: every server object + Owen's sealed
  // rootkey, replayed on the attacker's own SGX machine with a genuine
  // NEXUS enclave. Without a private key listed in the supernode, the
  // enclave refuses to mount — and the sealed rootkey doesn't unseal there.
  ASSERT_TRUE(fs_->WriteFile("crown-jewels", Bytes(1000, 7)).ok());
  auto& attacker = world_.AddMachine("attacker");
  const Status s = attacker.nexus->Mount(attacker.user, handle_.volume_uuid,
                                         handle_.sealed_rootkey);
  EXPECT_FALSE(s.ok());
}

TEST_F(AttackTest, ReplayedGrantDoesNotRestoreRevokedUser) {
  // Alice is granted access, then revoked. Replaying her old grant file
  // yields a rootkey, but mounting fails the user-table check (§VI).
  auto& alice = world_.AddMachine("alice");
  ASSERT_TRUE(alice.nexus->PublishIdentity(alice.user).ok());
  ASSERT_TRUE(
      fs_->GrantAccess(machine_->user, "alice", alice.user.public_key()).ok());
  auto alice_handle = alice.nexus->AcceptGrant(
      alice.user, "owen", machine_->user.public_key(), handle_.volume_uuid);
  ASSERT_TRUE(alice_handle.ok());

  ASSERT_TRUE(fs_->RemoveUser("alice").ok());

  // Replay: the sealed rootkey still unseals on Alice's machine, but the
  // challenge-response mount is refused.
  const Status s = alice.nexus->Mount(alice.user, handle_.volume_uuid,
                                      alice_handle->sealed_rootkey);
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
}

} // namespace
} // namespace nexus
