// Deterministic unit tests for the observability-layer latency
// distributions: the log2-bucket Histogram (lock-free, mergeable) and the
// exact-percentile Reservoir it replaced on cold paths.
#include "trace/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nexus::trace {
namespace {

// ---- bucket geometry --------------------------------------------------------

TEST(HistogramBuckets, ZeroHasItsOwnBucket) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketLo(0), 0u);
  EXPECT_EQ(Histogram::BucketHi(0), 1u); // exclusive upper bound: [0, 1)
}

TEST(HistogramBuckets, PowersOfTwoLandOnBucketBoundaries) {
  // Bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  EXPECT_EQ(Histogram::BucketIndex(2047), 11u);
  EXPECT_EQ(Histogram::BucketIndex(2048), 12u);
}

TEST(HistogramBuckets, EverySampleFallsInsideItsBucketRange) {
  for (std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 999ull, 123456789ull,
                          ~0ull >> 1, ~0ull}) {
    const std::size_t b = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLo(b)) << "value " << v;
    EXPECT_LE(v, Histogram::BucketHi(b)) << "value " << v;
  }
}

// ---- recording and summary stats --------------------------------------------

TEST(Histogram, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
  EXPECT_EQ(h.MinNs(), 0u);
  EXPECT_EQ(h.MaxNs(), 0u);
  EXPECT_EQ(h.MeanNs(), 0.0);
  EXPECT_EQ(h.PercentileNs(0.5), 0.0);
  EXPECT_EQ(h.PercentileNs(0.99), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  h.Record(12345);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.MinNs(), 12345u);
  EXPECT_EQ(h.MaxNs(), 12345u);
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.PercentileNs(p), 12345.0) << "p=" << p;
  }
}

TEST(Histogram, AllEqualSamplesAreExactViaMinMaxClamp) {
  // 1000 copies of one value: interpolation within the bucket is clamped
  // to the observed [min, max], so the result is exact.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(777777);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_DOUBLE_EQ(h.PercentileNs(0.5), 777777.0);
  EXPECT_DOUBLE_EQ(h.PercentileNs(0.99), 777777.0);
}

TEST(Histogram, MixedSamplesBoundedByOneBucket) {
  // Log2 buckets guarantee the percentile estimate lies within the
  // sample's bucket — at worst a factor of two off the true value.
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v * 1000); // 1us .. 1ms
    samples.push_back(v * 1000);
  }
  for (double p : {0.5, 0.9, 0.99}) {
    const double exact =
        static_cast<double>(samples[static_cast<std::size_t>(
            p * static_cast<double>(samples.size() - 1))]);
    const double est = h.PercentileNs(p);
    EXPECT_GE(est, exact / 2.0) << "p=" << p;
    EXPECT_LE(est, exact * 2.0) << "p=" << p;
  }
}

TEST(Histogram, PercentileNeverLeavesObservedRange) {
  Histogram h;
  h.Record(100);
  h.Record(1000000);
  for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(h.PercentileNs(p), 100.0);
    EXPECT_LE(h.PercentileNs(p), 1000000.0);
  }
}

TEST(Histogram, SumAndMeanTrackExactly) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.SumNs(), 60u);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 20.0);
}

TEST(Histogram, UnitConversionsRoundTrip) {
  Histogram h;
  h.RecordMs(1.5); // 1.5ms = 1'500'000 ns
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.MinNs(), 1500000u);
  EXPECT_DOUBLE_EQ(h.PercentileMs(0.5), 1.5);

  Histogram s;
  s.RecordSeconds(0.25); // 250ms
  EXPECT_EQ(s.MinNs(), 250000000u);
  EXPECT_DOUBLE_EQ(s.PercentileMs(0.5), 250.0);
}

TEST(Histogram, NegativeDurationsClampToZero) {
  Histogram h;
  h.RecordSeconds(-1.0);
  h.RecordMs(-5.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.MaxNs(), 0u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.Record(1);
  h.Record(1u << 20);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
  EXPECT_EQ(h.MinNs(), 0u);
  EXPECT_EQ(h.MaxNs(), 0u);
  EXPECT_EQ(h.PercentileNs(0.99), 0.0);
  // And it keeps working after the reset.
  h.Record(42);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.PercentileNs(0.5), 42.0);
}

// ---- merge ------------------------------------------------------------------

void Expect_same_distribution(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.SumNs(), b.SumNs());
  EXPECT_EQ(a.MinNs(), b.MinNs());
  EXPECT_EQ(a.MaxNs(), b.MaxNs());
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.PercentileNs(p), b.PercentileNs(p)) << "p=" << p;
  }
}

TEST(Histogram, MergeEqualsRecordingIntoOne) {
  Histogram shard_a;
  Histogram shard_b;
  Histogram combined;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    shard_a.Record(v * 17);
    combined.Record(v * 17);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    shard_b.Record(v * 9001);
    combined.Record(v * 9001);
  }
  Histogram merged;
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);
  Expect_same_distribution(merged, combined);
}

TEST(Histogram, MergeIsAssociative) {
  Histogram a;
  Histogram b;
  Histogram c;
  for (std::uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (std::uint64_t v = 1000; v <= 1100; ++v) b.Record(v);
  for (std::uint64_t v = 1u << 20; v <= (1u << 20) + 50; ++v) c.Record(v);

  // (a + b) + c
  Histogram left;
  left.MergeFrom(a);
  left.MergeFrom(b);
  left.MergeFrom(c);
  // a + (b + c)
  Histogram bc;
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  Histogram right;
  right.MergeFrom(a);
  right.MergeFrom(bc);

  Expect_same_distribution(left, right);
}

TEST(Histogram, MergeFromEmptyIsIdentity) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  Histogram empty;
  h.MergeFrom(empty);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.MinNs(), 5u);
  EXPECT_EQ(h.MaxNs(), 500u);
}

// ---- Reservoir --------------------------------------------------------------

TEST(Reservoir, EmptyPercentileIsZero) {
  Reservoir r;
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.Percentile(0.5), 0.0);
}

TEST(Reservoir, SingleSample) {
  Reservoir r;
  r.Record(3.5);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(r.Percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 3.5);
}

TEST(Reservoir, ExactPercentilesOnKnownSet) {
  // 1..100: p50 at rank 0.5 * 99 = 49.5 -> 50.5; p99 at rank 98.01 -> 99.01.
  Reservoir r;
  for (int v = 1; v <= 100; ++v) r.Record(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(r.Percentile(0.5), 50.5);
  EXPECT_NEAR(r.Percentile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 100.0);
}

TEST(Reservoir, OrderInsensitive) {
  Reservoir fwd;
  Reservoir rev;
  for (int v = 1; v <= 100; ++v) fwd.Record(static_cast<double>(v));
  for (int v = 100; v >= 1; --v) rev.Record(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(fwd.Percentile(0.5), rev.Percentile(0.5));
  EXPECT_DOUBLE_EQ(fwd.Percentile(0.99), rev.Percentile(0.99));
}

TEST(Reservoir, WrapAroundOverwritesOldest) {
  Reservoir r(4);
  for (int v = 1; v <= 4; ++v) r.Record(static_cast<double>(v));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.recorded(), 4u);
  // Fifth sample overwrites slot 0 (the oldest retained).
  r.Record(100.0);
  EXPECT_EQ(r.size(), 4u);      // still full, not grown
  EXPECT_EQ(r.recorded(), 5u);  // but all offers counted
  // Retained set is now {100, 2, 3, 4}: max reflects the new sample.
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 2.0);
}

TEST(Reservoir, FullWrapReplacesEntireWindow) {
  Reservoir r(8);
  for (int v = 0; v < 8; ++v) r.Record(1.0);
  for (int v = 0; v < 8; ++v) r.Record(9.0); // full second lap
  EXPECT_EQ(r.recorded(), 16u);
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 9.0);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 9.0);
}

TEST(Reservoir, ResetEmptiesAndReuses) {
  Reservoir r(4);
  for (int v = 1; v <= 10; ++v) r.Record(static_cast<double>(v));
  r.Reset();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.recorded(), 0u);
  r.Record(2.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.5), 2.0);
}

TEST(ExactPercentileFn, MatchesReservoirConvention) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 0.5), 2.5); // rank 1.5
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 1.0), 4.0);
  EXPECT_EQ(ExactPercentile({}, 0.5), 0.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(ExactPercentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 2.0), 4.0);
}

} // namespace
} // namespace nexus::trace
