// Journal codec and transaction-buffer unit tests: record/anchor
// round-trips, every rejection the recovery pass relies on (tamper,
// reorder, splice, torn tail, cross-volume transplant), object naming,
// and last-wins dedup.
#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "journal/journal.hpp"

namespace nexus::journal {
namespace {

class JournalCodecTest : public ::testing::Test {
 protected:
  crypto::HmacDrbg rng_{AsBytes("journal-test")};
  Key128 rootkey_ = rng_.Array<16>();
  JournalKey key_ = DeriveJournalKey(rootkey_);
  Uuid volume_ = rng_.NewUuid();

  std::vector<Op> SampleOps() {
    std::vector<Op> ops;
    Op put;
    put.kind = OpKind::kPut;
    put.uuid = rng_.NewUuid();
    put.blob = rng_.Generate(200);
    ops.push_back(put);
    Op rm;
    rm.kind = OpKind::kRemove;
    rm.uuid = rng_.NewUuid();
    ops.push_back(rm);
    return ops;
  }
};

TEST_F(JournalCodecTest, KeyDerivationIsDeterministicAndNotTheRootkey) {
  EXPECT_EQ(DeriveJournalKey(rootkey_), key_);
  EXPECT_NE(key_, rootkey_);
}

TEST_F(JournalCodecTest, ObjectNamesAreFixedWidthAndOrdered) {
  EXPECT_EQ(ObjectName(0), "0000000000000000");
  EXPECT_EQ(ObjectName(255), "00000000000000ff");
  EXPECT_LT(ObjectName(9), ObjectName(10)); // lexicographic == numeric
  EXPECT_LT(ObjectName(255), ObjectName(4096));
  for (const std::uint64_t seq : {0ull, 1ull, 77ull, ~0ull}) {
    const auto parsed = ParseObjectName(ObjectName(seq));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, seq);
  }
}

TEST_F(JournalCodecTest, ParseRejectsForeignNames) {
  EXPECT_FALSE(ParseObjectName(kAnchorName).has_value());
  EXPECT_FALSE(ParseObjectName("").has_value());
  EXPECT_FALSE(ParseObjectName("123").has_value());         // short
  EXPECT_FALSE(ParseObjectName("00000000000000FF").has_value()); // uppercase
  EXPECT_FALSE(ParseObjectName("00000000000000fg").has_value());
  EXPECT_FALSE(ParseObjectName("00000000000000ff0").has_value()); // long
}

TEST_F(JournalCodecTest, RecordRoundTrip) {
  const std::vector<Op> ops = SampleOps();
  const ByteArray<32> prev{};
  auto encoded = EncodeRecord(7, prev, ops, key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  auto opened = DecodeRecord(record, 7, prev, key_, volume_);
  ASSERT_TRUE(opened.ok());
  std::vector<Op> decoded = std::move(opened).value();
  ASSERT_EQ(decoded.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(decoded[i].kind, ops[i].kind);
    EXPECT_EQ(decoded[i].uuid, ops[i].uuid);
    EXPECT_EQ(decoded[i].blob, ops[i].blob);
  }
}

TEST_F(JournalCodecTest, EmptyTransactionsAreUnencodable) {
  EXPECT_FALSE(EncodeRecord(0, {}, {}, key_, volume_, rng_).ok());
}

TEST_F(JournalCodecTest, DecodeRejectsEveryTamperedByte) {
  const std::vector<Op> ops = SampleOps();
  auto encoded = EncodeRecord(3, {}, ops, key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  // Sample positions across header, IV and ciphertext (full sweep is slow).
  for (std::size_t pos = 0; pos < record.size(); pos += 7) {
    Bytes mutated = record;
    mutated[pos] ^= 0x01;
    EXPECT_FALSE(DecodeRecord(mutated, 3, {}, key_, volume_).ok())
        << "accepted a flip at byte " << pos;
  }
}

TEST_F(JournalCodecTest, DecodeRejectsTruncation) {
  auto encoded = EncodeRecord(3, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 std::size_t{11}, record.size() - 1}) {
    const Bytes torn(record.begin(), record.begin() + keep);
    EXPECT_FALSE(DecodeRecord(torn, 3, {}, key_, volume_).ok())
        << "accepted a record torn at " << keep << " bytes";
  }
}

TEST_F(JournalCodecTest, DecodeRejectsWrongSequenceNumber) {
  auto encoded = EncodeRecord(5, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  EXPECT_FALSE(DecodeRecord(record, 6, {}, key_, volume_).ok());
  EXPECT_FALSE(DecodeRecord(record, 4, {}, key_, volume_).ok());
}

TEST_F(JournalCodecTest, DecodeRejectsBrokenChain) {
  // Two records, the second binding the first's hash: replacing either
  // link's expectation breaks authentication (no reorder/splice).
  auto first_r = EncodeRecord(0, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(first_r.ok());
  Bytes first = std::move(first_r).value();
  const ByteArray<32> hash1 = ChainHash(first);
  auto second_r = EncodeRecord(1, hash1, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(second_r.ok());
  Bytes second = std::move(second_r).value();

  EXPECT_TRUE(DecodeRecord(second, 1, hash1, key_, volume_).ok());
  EXPECT_FALSE(DecodeRecord(second, 1, {}, key_, volume_).ok());
  // A re-encoded seq-0 record (attacker re-writes history) changes the
  // chain hash, so the old successor no longer extends it.
  auto forged_r = EncodeRecord(0, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(forged_r.ok());
  Bytes forged = std::move(forged_r).value();
  EXPECT_FALSE(DecodeRecord(second, 1, ChainHash(forged), key_, volume_).ok());
}

TEST_F(JournalCodecTest, DecodeRejectsCrossVolumeAndWrongKey) {
  auto encoded = EncodeRecord(2, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  const Uuid other_volume = rng_.NewUuid();
  EXPECT_FALSE(DecodeRecord(record, 2, {}, key_, other_volume).ok());
  const JournalKey other_key = DeriveJournalKey(rng_.Array<16>());
  EXPECT_FALSE(DecodeRecord(record, 2, {}, other_key, volume_).ok());
}

TEST_F(JournalCodecTest, AnchorRoundTripAndTamper) {
  Anchor anchor;
  anchor.next_seq = 42;
  anchor.chain_hash = crypto::Sha256::Hash(AsBytes("tail"));
  auto sealed = EncodeAnchor(anchor, key_, volume_, rng_);
  ASSERT_TRUE(sealed.ok());
  Bytes blob = std::move(sealed).value();
  auto opened = DecodeAnchor(blob, key_, volume_);
  ASSERT_TRUE(opened.ok());
  Anchor decoded = std::move(opened).value();
  EXPECT_EQ(decoded.next_seq, anchor.next_seq);
  EXPECT_EQ(decoded.chain_hash, anchor.chain_hash);

  Bytes mutated = blob;
  mutated[mutated.size() / 2] ^= 0x80;
  EXPECT_FALSE(DecodeAnchor(mutated, key_, volume_).ok());
  EXPECT_FALSE(DecodeAnchor(blob, key_, rng_.NewUuid()).ok());
}

TEST_F(JournalCodecTest, AnchorAndRecordAreNotInterchangeable) {
  auto encoded = EncodeRecord(0, {}, SampleOps(), key_, volume_, rng_);
  ASSERT_TRUE(encoded.ok());
  Bytes record = std::move(encoded).value();
  auto anchor_r = EncodeAnchor(Anchor{}, key_, volume_, rng_);
  ASSERT_TRUE(anchor_r.ok());
  Bytes anchor = std::move(anchor_r).value();
  EXPECT_FALSE(DecodeAnchor(record, key_, volume_).ok());
  EXPECT_FALSE(DecodeRecord(anchor, 0, {}, key_, volume_).ok());
}

// ---- TxnBuffer ---------------------------------------------------------------

TEST(TxnBufferTest, LastWinsDedupPerObject) {
  crypto::HmacDrbg rng(AsBytes("txn"));
  const Uuid a = rng.NewUuid();
  const Uuid b = rng.NewUuid();

  TxnBuffer txn;
  txn.Put(a, Bytes{1});
  txn.Put(b, Bytes{2});
  txn.Put(a, Bytes{3}); // replaces in place
  EXPECT_EQ(txn.size(), 2u);
  EXPECT_EQ(txn.deduped(), 1u);
  ASSERT_NE(txn.Find(a), nullptr);
  EXPECT_EQ(txn.Find(a)->blob, Bytes{3});

  txn.Remove(a); // a put superseded by a remove stays one op
  EXPECT_EQ(txn.size(), 2u);
  EXPECT_EQ(txn.Find(a)->kind, OpKind::kRemove);
  EXPECT_TRUE(txn.Find(a)->blob.empty());

  txn.Put(a, Bytes{4}); // and can flip back
  EXPECT_EQ(txn.Find(a)->kind, OpKind::kPut);
  EXPECT_EQ(txn.size(), 2u);
}

TEST(TxnBufferTest, TakeOpsDrainsAndResets) {
  crypto::HmacDrbg rng(AsBytes("txn2"));
  TxnBuffer txn;
  const Uuid a = rng.NewUuid();
  txn.Put(a, Bytes{1});
  txn.Put(a, Bytes{2});
  const std::vector<Op> ops = txn.TakeOps();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].blob, Bytes{2});
  EXPECT_TRUE(txn.empty());
  EXPECT_EQ(txn.deduped(), 0u);
  EXPECT_EQ(txn.Find(a), nullptr);
}

} // namespace
} // namespace nexus::journal
