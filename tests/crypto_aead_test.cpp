// AES, AES-GCM and AES-GCM-SIV known-answer + property tests.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"
#include "crypto/gcm_siv.hpp"
#include "crypto/rng.hpp"

namespace nexus::crypto {
namespace {

Bytes FromHex(std::string_view h) { return HexDecode(h).value(); }
std::string HexOf(ByteSpan b) { return HexEncode(b); }

// FIPS-197 Appendix C known-answer tests.
TEST(Aes, Fips197Aes128) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexOf(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      FromHex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexOf(ByteSpan(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(24)).ok()); // AES-192 unsupported by design
  EXPECT_FALSE(Aes::Create(Bytes(0)).ok());
}

TEST(Aes, CtrRoundTrip) {
  auto aes = Aes::Create(Bytes(16, 0x55)).value();
  HmacDrbg rng(AsBytes("ctr"));
  const Bytes pt = rng.Generate(1000);
  uint8_t ctr[16] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 0, 0, 1};
  Bytes ct(pt.size()), back(pt.size());
  AesCtrXor(aes, ctr, pt, ct);
  EXPECT_NE(pt, ct);
  AesCtrXor(aes, ctr, ct, back);
  EXPECT_EQ(pt, back);
}

// NIST GCM test vectors (the canonical set from the GCM spec).
TEST(Gcm, NistCase1EmptyPlaintext) {
  auto aes = Aes::Create(Bytes(16, 0)).value();
  const Bytes iv(12, 0);
  auto sealed = GcmSeal(aes, iv, {}, {});
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistCase2SingleBlock) {
  auto aes = Aes::Create(Bytes(16, 0)).value();
  const Bytes iv(12, 0);
  const Bytes pt(16, 0);
  auto sealed = GcmSeal(aes, iv, {}, pt);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, NistCase3FourBlocks) {
  auto aes = Aes::Create(FromHex("feffe9928665731c6d6a8f9467308308")).value();
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  auto sealed = GcmSeal(aes, iv, {}, pt);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Gcm, NistCase4WithAad) {
  auto aes = Aes::Create(FromHex("feffe9928665731c6d6a8f9467308308")).value();
  const Bytes iv = FromHex("cafebabefacedbaddecaf888");
  const Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  auto sealed = GcmSeal(aes, iv, aad, pt);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(Gcm, RoundTripAndTamperDetection) {
  HmacDrbg rng(AsBytes("gcm"));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    auto aes = Aes::Create(rng.Generate(16)).value();
    const Bytes iv = rng.Generate(12);
    const Bytes aad = rng.Generate(32);
    const Bytes pt = rng.Generate(len);

    auto sealed = GcmSeal(aes, iv, aad, pt).value();
    auto open = GcmOpen(aes, iv, aad, sealed);
    ASSERT_TRUE(open.ok()) << len;
    EXPECT_EQ(*open, pt);

    // Flipping any single byte must be detected.
    Bytes bad = sealed;
    bad[rng.Below(bad.size())] ^= 0x01;
    auto fail = GcmOpen(aes, iv, aad, bad);
    EXPECT_FALSE(fail.ok()) << len;
    EXPECT_EQ(fail.status().code(), ErrorCode::kIntegrityViolation);

    // Wrong AAD must be detected.
    Bytes bad_aad = aad;
    bad_aad[0] ^= 0xff;
    EXPECT_FALSE(GcmOpen(aes, iv, bad_aad, sealed).ok());
  }
}

// RFC 8452 Appendix A POLYVAL vector.
TEST(GcmSiv, PolyvalVector) {
  const auto h = ToArray<16>(FromHex("25629347589242761d31f826ba4b757b"));
  const Bytes x = FromHex(
      "4f4f95668c83dfb6401762bb2d01a262"
      "d1a24ddd2721d006bbe45f20d3c9f362");
  EXPECT_EQ(HexOf(Polyval(h, x)), "f7a3b47b846119fae5b7866cf5e5b77e");
}

// RFC 8452 Appendix C.1 AES-128-GCM-SIV vectors.
TEST(GcmSiv, Rfc8452EmptyPlaintext) {
  const Bytes key = FromHex("01000000000000000000000000000000");
  const Bytes nonce = FromHex("030000000000000000000000");
  auto sealed = GcmSivSeal(key, nonce, {}, {});
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed), "dc20e2d83f25705bb49e439eca56de25");
}

TEST(GcmSiv, Rfc8452EightBytePlaintext) {
  const Bytes key = FromHex("01000000000000000000000000000000");
  const Bytes nonce = FromHex("030000000000000000000000");
  const Bytes pt = FromHex("0100000000000000");
  auto sealed = GcmSivSeal(key, nonce, {}, pt);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexOf(*sealed),
            "b5d839330ac7b786578782fff6013b815b287c22493a364c");
}

TEST(GcmSiv, AadIsBoundIntoTheTag) {
  const Bytes key = FromHex("01000000000000000000000000000000");
  const Bytes nonce = FromHex("030000000000000000000000");
  const Bytes pt = FromHex("02000000");
  const Bytes aad = FromHex("01");
  auto sealed = GcmSivSeal(key, nonce, aad, pt).value();
  // Opens only under the exact AAD it was sealed with.
  EXPECT_TRUE(GcmSivOpen(key, nonce, aad, sealed).ok());
  EXPECT_FALSE(GcmSivOpen(key, nonce, {}, sealed).ok());
  EXPECT_FALSE(GcmSivOpen(key, nonce, FromHex("02"), sealed).ok());
  // And a different AAD changes the ciphertext (tag feeds the keystream).
  auto other = GcmSivSeal(key, nonce, FromHex("02"), pt).value();
  EXPECT_NE(sealed, other);
}

TEST(GcmSiv, RoundTripBothKeySizes) {
  HmacDrbg rng(AsBytes("siv"));
  for (std::size_t key_len : {16u, 32u}) {
    for (std::size_t len : {0u, 1u, 16u, 33u, 500u}) {
      const Bytes key = rng.Generate(key_len);
      const Bytes nonce = rng.Generate(12);
      const Bytes aad = rng.Generate(7);
      const Bytes pt = rng.Generate(len);

      auto sealed = GcmSivSeal(key, nonce, aad, pt).value();
      auto open = GcmSivOpen(key, nonce, aad, sealed);
      ASSERT_TRUE(open.ok());
      EXPECT_EQ(*open, pt);

      Bytes bad = sealed;
      bad[rng.Below(bad.size())] ^= 0x80;
      EXPECT_FALSE(GcmSivOpen(key, nonce, aad, bad).ok());
    }
  }
}

TEST(GcmSiv, NonceMisuseKeepsKeyWrapDeterministic) {
  // GCM-SIV is deterministic for a fixed (key, nonce, aad, pt): the wrapped
  // key bytes are stable, which NEXUS relies on for idempotent re-encodes.
  const Bytes key(16, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes pt(16, 0x33);
  auto a = GcmSivSeal(key, nonce, {}, pt).value();
  auto b = GcmSivSeal(key, nonce, {}, pt).value();
  EXPECT_EQ(a, b);
}

} // namespace
} // namespace nexus::crypto
