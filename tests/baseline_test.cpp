// Pure-cryptographic baseline filesystem: correctness of the hybrid
// keywrap, reader authorization, and the (expensive) revocation semantics
// NEXUS is compared against in §VII-E.
#include <gtest/gtest.h>

#include "baseline/pure_crypto_fs.hpp"
#include "storage/afs.hpp"
#include "storage/backend.hpp"

namespace nexus::baseline {
namespace {

class PureCryptoTest : public ::testing::Test {
 protected:
  PureCryptoTest()
      : server_(std::make_unique<storage::MemBackend>(), clock_),
        afs_(server_, "client"),
        rng_(AsBytes("pure-crypto")),
        fs_(afs_, rng_),
        owner_(BoxKeyPair::Generate("owner", rng_)),
        alice_(BoxKeyPair::Generate("alice", rng_)),
        bob_(BoxKeyPair::Generate("bob", rng_)) {}

  std::vector<Reader> AllReaders() const {
    return {{"owner", owner_.public_key},
            {"alice", alice_.public_key},
            {"bob", bob_.public_key}};
  }

  storage::SimClock clock_;
  storage::AfsServer server_;
  storage::AfsClient afs_;
  crypto::HmacDrbg rng_;
  PureCryptoFs fs_;
  BoxKeyPair owner_, alice_, bob_;
};

TEST_F(PureCryptoTest, AuthorizedReadersDecrypt) {
  const Bytes content = rng_.Generate(5000);
  ASSERT_TRUE(fs_.WriteFile("d/f", content, AllReaders()).ok());
  EXPECT_EQ(fs_.ReadFile("d/f", "owner", owner_.private_key).value(), content);
  EXPECT_EQ(fs_.ReadFile("d/f", "alice", alice_.private_key).value(), content);
  EXPECT_EQ(fs_.ReadFile("d/f", "bob", bob_.private_key).value(), content);
}

TEST_F(PureCryptoTest, UnlistedReaderDenied) {
  ASSERT_TRUE(fs_.WriteFile("d/f", Bytes(100, 1),
                            {{"owner", owner_.public_key}}).ok());
  const auto r = fs_.ReadFile("d/f", "alice", alice_.private_key);
  EXPECT_EQ(r.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(PureCryptoTest, WrongPrivateKeyDenied) {
  ASSERT_TRUE(fs_.WriteFile("d/f", Bytes(100, 1), AllReaders()).ok());
  // Bob presents himself as alice but holds his own key.
  EXPECT_FALSE(fs_.ReadFile("d/f", "alice", bob_.private_key).ok());
}

TEST_F(PureCryptoTest, ContentIsEncryptedOnServer) {
  const std::string marker = "PLAINTEXT-MARKER-123456";
  ASSERT_TRUE(fs_.WriteFile("d/f", AsBytes(marker), AllReaders()).ok());
  const Bytes stored = server_.AdversaryRead("pc/d/f").value();
  const std::string raw(reinterpret_cast<const char*>(stored.data()),
                        stored.size());
  EXPECT_EQ(raw.find(marker), std::string::npos);
}

TEST_F(PureCryptoTest, TamperedCiphertextDetected) {
  ASSERT_TRUE(fs_.WriteFile("d/f", Bytes(500, 7), AllReaders()).ok());
  Bytes blob = server_.AdversaryRead("pc/d/f").value();
  blob[100] ^= 1;
  ASSERT_TRUE(server_.AdversaryWrite("pc/d/f", blob).ok());
  afs_.FlushCache();
  EXPECT_FALSE(fs_.ReadFile("d/f", "owner", owner_.private_key).ok());
}

TEST_F(PureCryptoTest, RevocationReencryptsEveryAffectedFile) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_.WriteFile("d/f" + std::to_string(i), Bytes(1000, 1),
                              AllReaders()).ok());
  }
  // A file alice cannot read anyway is untouched by her revocation.
  ASSERT_TRUE(fs_.WriteFile("other/g", Bytes(1000, 1),
                            {{"owner", owner_.public_key}}).ok());

  ASSERT_TRUE(fs_.Revoke("d/", "alice", owner_).ok());
  EXPECT_EQ(fs_.stats().files_reencrypted, 10u);
  EXPECT_EQ(fs_.stats().bytes_reencrypted, 10000u);

  // Alice lost access; others keep it.
  for (int i = 0; i < 10; ++i) {
    const std::string path = "d/f" + std::to_string(i);
    EXPECT_FALSE(fs_.ReadFile(path, "alice", alice_.private_key).ok()) << i;
    EXPECT_TRUE(fs_.ReadFile(path, "owner", owner_.private_key).ok()) << i;
    EXPECT_TRUE(fs_.ReadFile(path, "bob", bob_.private_key).ok()) << i;
  }
}

TEST_F(PureCryptoTest, RevocationDefeatsCachedFileKey) {
  // The whole reason revocation must re-encrypt: alice cached the old
  // ciphertext + keyblock before being revoked.
  ASSERT_TRUE(fs_.WriteFile("d/f", Bytes(100, 9), AllReaders()).ok());
  const Bytes old_data = server_.AdversaryRead("pc/d/f").value();
  const Bytes old_keys = server_.AdversaryRead("pck/d/f").value();

  ASSERT_TRUE(fs_.Revoke("d/", "alice", owner_).ok());

  // Against the *new* server state alice fails...
  afs_.FlushCache();
  EXPECT_FALSE(fs_.ReadFile("d/f", "alice", alice_.private_key).ok());
  // ...but with her stashed copies she can still decrypt the OLD content —
  // which is precisely why the file had to be re-keyed before any new data
  // is written under it.
  ASSERT_TRUE(server_.AdversaryWrite("pc/d/f", old_data).ok());
  ASSERT_TRUE(server_.AdversaryWrite("pck/d/f", old_keys).ok());
  afs_.FlushCache();
  EXPECT_TRUE(fs_.ReadFile("d/f", "alice", alice_.private_key).ok());
}

TEST_F(PureCryptoTest, RevokeCostScalesWithData) {
  // 1 KB vs 100 KB files: bytes_reencrypted tracks data size — the
  // Garrison et al. observation NEXUS avoids.
  ASSERT_TRUE(fs_.WriteFile("small/f", Bytes(1024, 1), AllReaders()).ok());
  ASSERT_TRUE(fs_.WriteFile("large/f", Bytes(100 * 1024, 1), AllReaders()).ok());

  fs_.ResetStats();
  ASSERT_TRUE(fs_.Revoke("small/", "alice", owner_).ok());
  const auto small_bytes = fs_.stats().bytes_reencrypted;
  fs_.ResetStats();
  ASSERT_TRUE(fs_.Revoke("large/", "alice", owner_).ok());
  const auto large_bytes = fs_.stats().bytes_reencrypted;

  EXPECT_EQ(small_bytes, 1024u);
  EXPECT_EQ(large_bytes, 100u * 1024u);
}

TEST_F(PureCryptoTest, RevokerMustBeAReader) {
  ASSERT_TRUE(fs_.WriteFile("d/f", Bytes(10, 1),
                            {{"alice", alice_.public_key}}).ok());
  // The owner isn't in the reader set of this file: revocation fails
  // (cannot decrypt to re-encrypt) rather than corrupting the file.
  EXPECT_FALSE(fs_.Revoke("d/", "alice", owner_).ok());
}

} // namespace
} // namespace nexus::baseline
