// Wire-protocol codec tests: request/response heads, error-code mapping,
// and rejection of malformed or hostile frames.
#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace nexus::net {
namespace {

TEST(WireRequest, HeadRoundTripsEveryRpc) {
  for (const Rpc rpc :
       {Rpc::kPing, Rpc::kGet, Rpc::kPut, Rpc::kDelete, Rpc::kExists,
        Rpc::kList, Rpc::kStreamBegin, Rpc::kStreamAppend, Rpc::kStreamCommit,
        Rpc::kStreamAbort}) {
    Writer w = BeginRequest(rpc);
    w.Str("arg");
    Reader r(w.bytes());
    auto parsed = ParseRequestHead(r);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), rpc);
    EXPECT_EQ(r.Str().value(), "arg"); // reader left at first argument
  }
}

TEST(WireRequest, RejectsWrongVersion) {
  Writer w;
  w.U8(kProtocolVersion + 1);
  w.U8(static_cast<std::uint8_t>(Rpc::kPing));
  Reader r(w.bytes());
  EXPECT_FALSE(ParseRequestHead(r).ok());
}

TEST(WireRequest, RejectsUnknownRpcId) {
  for (const std::uint8_t id : {std::uint8_t{0}, std::uint8_t{11},
                                std::uint8_t{200}}) {
    Writer w;
    w.U8(kProtocolVersion);
    w.U8(id);
    Reader r(w.bytes());
    EXPECT_FALSE(ParseRequestHead(r).ok()) << unsigned{id};
  }
}

TEST(WireRequest, RejectsEmptyFrame) {
  Reader r(ByteSpan{});
  EXPECT_FALSE(ParseRequestHead(r).ok());
}

TEST(WireResponse, OkHeadRoundTrips) {
  Writer w = BeginResponse(Status::Ok());
  w.U64(42);
  Reader r(w.bytes());
  Status verdict = Error(ErrorCode::kInternal, "sentinel");
  ASSERT_TRUE(ParseResponseHead(r, &verdict).ok());
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(r.U64().value(), 42u); // results follow the head
}

TEST(WireResponse, ErrorVerdictCarriesCodeAndMessage) {
  Writer w = BeginResponse(Error(ErrorCode::kNotFound, "no such object"));
  Reader r(w.bytes());
  Status verdict = Status::Ok();
  ASSERT_TRUE(ParseResponseHead(r, &verdict).ok());
  EXPECT_EQ(verdict.code(), ErrorCode::kNotFound);
  EXPECT_EQ(verdict.message(), "no such object");
}

TEST(WireResponse, EveryErrorCodeRoundTrips) {
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kPermissionDenied,
        ErrorCode::kIntegrityViolation, ErrorCode::kCryptoFailure,
        ErrorCode::kIOError, ErrorCode::kConflict, ErrorCode::kOutOfRange,
        ErrorCode::kUnimplemented, ErrorCode::kInternal}) {
    Writer w = BeginResponse(Error(code, "m"));
    Reader r(w.bytes());
    Status verdict = Status::Ok();
    ASSERT_TRUE(ParseResponseHead(r, &verdict).ok());
    EXPECT_EQ(verdict.code(), code);
  }
}

TEST(WireResponse, TruncatedHeadIsProtocolViolation) {
  Writer w = BeginResponse(Error(ErrorCode::kIOError, "message"));
  for (std::size_t keep = 0; keep + 1 < w.bytes().size(); ++keep) {
    Reader r(ByteSpan(w.bytes().data(), keep));
    Status verdict = Status::Ok();
    EXPECT_FALSE(ParseResponseHead(r, &verdict).ok()) << keep;
  }
}

TEST(WireResponse, WrongVersionIsProtocolViolation) {
  Writer w;
  w.U8(kProtocolVersion + 7);
  w.U8(0);
  w.Str("");
  Reader r(w.bytes());
  Status verdict = Status::Ok();
  EXPECT_FALSE(ParseResponseHead(r, &verdict).ok());
}

// A rogue server cannot smuggle an out-of-range enum value into client
// branches: unknown code bytes decode as kInternal.
TEST(WireCodes, UnknownWireByteDecodesAsInternal) {
  EXPECT_EQ(CodeFromWire(255), ErrorCode::kInternal);
  EXPECT_EQ(CodeFromWire(static_cast<std::uint8_t>(ErrorCode::kInternal) + 1),
            ErrorCode::kInternal);
  EXPECT_EQ(CodeFromWire(CodeToWire(ErrorCode::kConflict)),
            ErrorCode::kConflict);
  EXPECT_EQ(CodeFromWire(0), ErrorCode::kOk);
}

TEST(WireBounds, FrameBoundAdmitsMaxObjectPlusSlack) {
  EXPECT_GT(kMaxFrameBytes, kMaxObjectBytes);
  EXPECT_LE(kMaxFrameBytes - kMaxObjectBytes, std::size_t{1} << 20);
}

} // namespace
} // namespace nexus::net
