// Wire-protocol codec tests: request/response heads, correlation ids,
// error-code mapping, the Stats payload codec, and rejection of malformed
// or hostile frames.
#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace nexus::net {
namespace {

constexpr Rpc kAllRpcs[] = {
    Rpc::kPing,         Rpc::kGet,          Rpc::kPut,
    Rpc::kDelete,       Rpc::kExists,       Rpc::kList,
    Rpc::kStreamBegin,  Rpc::kStreamAppend, Rpc::kStreamCommit,
    Rpc::kStreamAbort,  Rpc::kStats,
};

TEST(WireRequest, HeadRoundTripsEveryRpc) {
  for (const Rpc rpc : kAllRpcs) {
    Writer w = BeginRequest(rpc);
    w.Str("arg");
    Reader r(w.bytes());
    std::uint64_t corr = 0;
    auto parsed = ParseRequestHead(r, &corr);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), rpc);
    EXPECT_NE(corr, 0u); // BeginRequest draws a fresh nonzero id
    EXPECT_EQ(r.Str().value(), "arg"); // reader left at first argument
  }
}

TEST(WireRequest, CorrelationIdRoundTripsAndIsUnique) {
  Writer a = BeginRequest(Rpc::kPing);
  Writer b = BeginRequest(Rpc::kPing);
  // Readable straight off the raw frame without parsing...
  const std::uint64_t corr_a = RequestCorrelation(a.bytes());
  const std::uint64_t corr_b = RequestCorrelation(b.bytes());
  EXPECT_NE(corr_a, 0u);
  EXPECT_NE(corr_a, corr_b); // each request draws a fresh id
  // ...and through the parser, identically.
  Reader r(a.bytes());
  std::uint64_t parsed_corr = 0;
  ASSERT_TRUE(ParseRequestHead(r, &parsed_corr).ok());
  EXPECT_EQ(parsed_corr, corr_a);
}

TEST(WireRequest, ExplicitCorrelationIsPreserved) {
  Writer w = BeginRequest(Rpc::kGet, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(RequestCorrelation(w.bytes()), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(RequestRpc(w.bytes()), Rpc::kGet);
}

TEST(WireRequest, RawAccessorsToleratetShortFrames) {
  // RequestCorrelation on anything shorter than a full head returns 0
  // rather than reading out of bounds.
  Writer w = BeginRequest(Rpc::kPing);
  for (std::size_t keep = 0; keep < kRequestCorrelationOffset + 8; ++keep) {
    EXPECT_EQ(RequestCorrelation(ByteSpan(w.bytes().data(), keep)), 0u)
        << keep;
  }
}

TEST(WireRequest, RejectsWrongVersion) {
  Writer w;
  w.U8(kProtocolVersion + 1);
  w.U8(static_cast<std::uint8_t>(Rpc::kPing));
  w.U64(1);
  Reader r(w.bytes());
  EXPECT_FALSE(ParseRequestHead(r).ok());
}

TEST(WireRequest, RejectsLegacyV1Frames) {
  // Protocol v1 had no correlation id; its frames must not parse as v2.
  Writer w;
  w.U8(1);
  w.U8(static_cast<std::uint8_t>(Rpc::kGet));
  w.Str("path");
  Reader r(w.bytes());
  EXPECT_FALSE(ParseRequestHead(r).ok());
}

TEST(WireRequest, RejectsUnknownRpcId) {
  // 18 is the first id past the v6 paged-listing RPC — the new "one past
  // the end" probe; bump it when the RPC table grows again.
  for (const std::uint8_t id : {std::uint8_t{0}, std::uint8_t{18},
                                std::uint8_t{200}}) {
    Writer w;
    w.U8(kProtocolVersion);
    w.U8(id);
    w.U64(1);
    Reader r(w.bytes());
    EXPECT_FALSE(ParseRequestHead(r).ok()) << unsigned{id};
  }
}

TEST(WireRequest, RejectsBatchRpcsOnV2Heads) {
  // The batch ops exist only in v3: a v2 head naming them is malformed,
  // not a forward-compatible surprise for an old server.
  for (const Rpc rpc : {Rpc::kMultiGet, Rpc::kMultiExists}) {
    Writer w = BeginRequest(rpc, 7, /*version=*/2);
    Reader r(w.bytes());
    EXPECT_FALSE(ParseRequestHead(r).ok()) << RpcName(rpc);
    Writer v3 = BeginRequest(rpc, 7, /*version=*/3);
    Reader r3(v3.bytes());
    ASSERT_TRUE(ParseRequestHead(r3).ok()) << RpcName(rpc);
  }
}

TEST(WireRequest, RejectsEmptyFrame) {
  Reader r(ByteSpan{});
  EXPECT_FALSE(ParseRequestHead(r).ok());
}

TEST(WireRequest, TruncatedHeadIsProtocolViolation) {
  Writer w = BeginRequest(Rpc::kPut);
  for (std::size_t keep = 0; keep < kRequestCorrelationOffset + 8; ++keep) {
    Reader r(ByteSpan(w.bytes().data(), keep));
    EXPECT_FALSE(ParseRequestHead(r).ok()) << keep;
  }
}

TEST(WireRequest, RpcNameCoversEveryRpc) {
  for (const Rpc rpc : kAllRpcs) {
    EXPECT_STRNE(RpcName(rpc), "unknown");
  }
  EXPECT_STREQ(RpcName(Rpc::kStats), "stats");
  EXPECT_STREQ(RpcName(static_cast<Rpc>(250)), "unknown");
}

TEST(WireResponse, OkHeadRoundTripsWithCorrelation) {
  Writer w = BeginResponse(Status::Ok(), 77);
  w.U64(42);
  Reader r(w.bytes());
  Status verdict = Error(ErrorCode::kInternal, "sentinel");
  std::uint64_t corr = 0;
  ASSERT_TRUE(ParseResponseHead(r, &verdict, &corr).ok());
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(corr, 77u); // server echoes the request's id
  EXPECT_EQ(r.U64().value(), 42u); // results follow the head
}

TEST(WireResponse, ErrorVerdictCarriesCodeAndMessage) {
  Writer w = BeginResponse(Error(ErrorCode::kNotFound, "no such object"), 1);
  Reader r(w.bytes());
  Status verdict = Status::Ok();
  ASSERT_TRUE(ParseResponseHead(r, &verdict).ok());
  EXPECT_EQ(verdict.code(), ErrorCode::kNotFound);
  EXPECT_EQ(verdict.message(), "no such object");
}

TEST(WireResponse, EveryErrorCodeRoundTrips) {
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kPermissionDenied,
        ErrorCode::kIntegrityViolation, ErrorCode::kCryptoFailure,
        ErrorCode::kIOError, ErrorCode::kConflict, ErrorCode::kOutOfRange,
        ErrorCode::kUnimplemented, ErrorCode::kInternal}) {
    Writer w = BeginResponse(Error(code, "m"), 5);
    Reader r(w.bytes());
    Status verdict = Status::Ok();
    ASSERT_TRUE(ParseResponseHead(r, &verdict).ok());
    EXPECT_EQ(verdict.code(), code);
  }
}

TEST(WireResponse, TruncatedHeadIsProtocolViolation) {
  Writer w = BeginResponse(Error(ErrorCode::kIOError, "message"), 9);
  for (std::size_t keep = 0; keep + 1 < w.bytes().size(); ++keep) {
    Reader r(ByteSpan(w.bytes().data(), keep));
    Status verdict = Status::Ok();
    EXPECT_FALSE(ParseResponseHead(r, &verdict).ok()) << keep;
  }
}

TEST(WireResponse, WrongVersionIsProtocolViolation) {
  Writer w;
  w.U8(kProtocolVersion + 7);
  w.U64(0);
  w.U8(0);
  w.Str("");
  Reader r(w.bytes());
  Status verdict = Status::Ok();
  EXPECT_FALSE(ParseResponseHead(r, &verdict).ok());
}

// A rogue server cannot smuggle an out-of-range enum value into client
// branches: unknown code bytes decode as kInternal.
TEST(WireCodes, UnknownWireByteDecodesAsInternal) {
  EXPECT_EQ(CodeFromWire(255), ErrorCode::kInternal);
  EXPECT_EQ(CodeFromWire(static_cast<std::uint8_t>(ErrorCode::kInternal) + 1),
            ErrorCode::kInternal);
  EXPECT_EQ(CodeFromWire(CodeToWire(ErrorCode::kConflict)),
            ErrorCode::kConflict);
  EXPECT_EQ(CodeFromWire(0), ErrorCode::kOk);
}

TEST(WireBounds, FrameBoundAdmitsMaxObjectPlusSlack) {
  EXPECT_GT(kMaxFrameBytes, kMaxObjectBytes);
  EXPECT_LE(kMaxFrameBytes - kMaxObjectBytes, std::size_t{1} << 20);
}

// ---- ServerStats codec ------------------------------------------------------

ServerStats SampleStats() {
  ServerStats s;
  s.connections_accepted = 12;
  s.active_connections = 3;
  s.rpcs_served = 345;
  s.protocol_errors = 2;
  s.open_streams = 1;
  s.streams_aborted_on_disconnect = 4;
  s.bytes_received = 1 << 20;
  s.bytes_sent = 9999;
  s.per_op.push_back(RpcOpStats{static_cast<std::uint8_t>(Rpc::kGet), 100,
                                50000, 900000, 0.125, 7.5});
  s.per_op.push_back(RpcOpStats{static_cast<std::uint8_t>(Rpc::kPut), 40,
                                800000, 4000, 1.0 / 3.0, 42.0});
  s.per_op.push_back(RpcOpStats{static_cast<std::uint8_t>(Rpc::kStats), 1,
                                10, 200, 0.0, 0.0});
  return s;
}

TEST(WireStats, EncodeDecodeRoundTripsBitExactly) {
  const ServerStats want = SampleStats();
  Writer w;
  EncodeServerStats(w, want);
  Reader r(w.bytes());
  auto got = DecodeServerStats(r);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // operator== is defaulted: doubles (p50/p99) must survive bit-exactly
  // through the F64 codec, 1/3 included.
  EXPECT_EQ(got.value(), want);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireStats, EmptyPerOpTableRoundTrips) {
  ServerStats want;
  want.rpcs_served = 1;
  Writer w;
  EncodeServerStats(w, want);
  Reader r(w.bytes());
  auto got = DecodeServerStats(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), want);
  EXPECT_TRUE(got.value().per_op.empty());
}

TEST(WireStats, TruncatedPayloadIsRejectedAtEveryPrefix) {
  Writer w;
  EncodeServerStats(w, SampleStats());
  for (std::size_t keep = 0; keep + 1 < w.bytes().size(); ++keep) {
    Reader r(ByteSpan(w.bytes().data(), keep));
    EXPECT_FALSE(DecodeServerStats(r).ok()) << keep;
  }
}

TEST(WireStats, HostileEntryCountIsRejected) {
  // A rogue server cannot force a huge vector reserve: entry counts above
  // the number of defined RPCs are rejected before any allocation.
  ServerStats empty;
  Writer w;
  EncodeServerStats(w, empty);
  // Patch the per-op entry count (last 4 bytes written as U32 by the
  // codec would be wrong to assume — rebuild by hand instead).
  Writer hostile;
  hostile.U64(0); // connections_accepted
  hostile.U64(0); // active_connections
  hostile.U64(0); // rpcs_served
  hostile.U64(0); // protocol_errors
  hostile.U64(0); // open_streams
  hostile.U64(0); // streams_aborted_on_disconnect
  hostile.U64(0); // bytes_received
  hostile.U64(0); // bytes_sent
  hostile.U32(1u << 30); // absurd per-op entry count
  Reader r(hostile.bytes());
  EXPECT_FALSE(DecodeServerStats(r).ok());
}

TEST(WireStats, EntryWithInvalidRpcIdIsRejected) {
  ServerStats s;
  s.per_op.push_back(RpcOpStats{200, 1, 2, 3, 0.5, 0.9});
  Writer w;
  EncodeServerStats(w, s);
  Reader r(w.bytes());
  EXPECT_FALSE(DecodeServerStats(r).ok());
}

TEST(WireStats, StatsRequestFrameIsWellFormed) {
  Writer w = BeginRequest(Rpc::kStats);
  EXPECT_EQ(RequestRpc(w.bytes()), Rpc::kStats);
  Reader r(w.bytes());
  auto rpc = ParseRequestHead(r);
  ASSERT_TRUE(rpc.ok());
  EXPECT_EQ(rpc.value(), Rpc::kStats);
  EXPECT_TRUE(r.AtEnd()); // stats takes no arguments
}

} // namespace
} // namespace nexus::net
