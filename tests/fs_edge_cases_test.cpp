// Filesystem edge cases: pathological names, deep nesting, mixed-type
// siblings, multiple volumes sharing one untrusted server, and volume
// config variants (chunk and bucket size extremes).
#include <gtest/gtest.h>

#include "test_env.hpp"

namespace nexus {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
  }
  core::NexusClient& fs() { return *machine_->nexus; }

  test::World world_;
  test::Machine* machine_ = nullptr;
};

TEST_F(EdgeCaseTest, UnusualFileNames) {
  const std::vector<std::string> names = {
      "with space",       "tab\tname",         "newline\nname",
      "unicode-\xc3\xa9\xc3\xa0", "dots...middle", "-leading-dash",
      "#hash",            "~tilde",            "name.with.many.dots",
      std::string(255, 'x'),
  };
  for (const auto& name : names) {
    ASSERT_TRUE(fs().WriteFile(name, AsBytes(name)).ok()) << name;
  }
  // Cold reload: names round-trip through the encrypted dirnode.
  fs().DropAllCaches();
  for (const auto& name : names) {
    EXPECT_EQ(fs().ReadFile(name).value(), ToBytes(name)) << name;
  }
  EXPECT_EQ(fs().ListDir("").value().size(), names.size());
}

TEST_F(EdgeCaseTest, DeepNesting) {
  std::string path;
  for (int i = 0; i < 40; ++i) {
    path += (i == 0 ? "" : "/") + std::string("level") + std::to_string(i);
    ASSERT_TRUE(fs().Mkdir(path).ok()) << path;
  }
  const std::string file = path + "/leaf.txt";
  ASSERT_TRUE(fs().WriteFile(file, Bytes{42}).ok());
  fs().DropAllCaches();
  const auto misses_before = fs().enclave().cache_stats().dirnode_misses;
  EXPECT_EQ(fs().ReadFile(file).value(), Bytes{42});
  // The cold walk decrypts (and parent-verifies) every level exactly once:
  // root + 40 nested directories.
  EXPECT_EQ(fs().enclave().cache_stats().dirnode_misses - misses_before, 41u);
}

TEST_F(EdgeCaseTest, MixedTypeSiblings) {
  ASSERT_TRUE(fs().Mkdir("x").ok());
  ASSERT_TRUE(fs().Touch("x/entry-file").ok());
  ASSERT_TRUE(fs().Mkdir("x/entry-dir").ok());
  ASSERT_TRUE(fs().Symlink("entry-file", "x/entry-link").ok());

  // Same name cannot be reused across types.
  EXPECT_FALSE(fs().Mkdir("x/entry-file").ok());
  EXPECT_FALSE(fs().Touch("x/entry-dir").ok());
  EXPECT_FALSE(fs().Symlink("a", "x/entry-link").ok());

  // Type-specific ops reject the wrong type.
  EXPECT_FALSE(fs().ReadFile("x/entry-dir").ok());
  EXPECT_FALSE(fs().Readlink("x/entry-file").ok());
  EXPECT_FALSE(fs().ListDir("x/entry-file").ok());
}

TEST_F(EdgeCaseTest, HardlinkThenRenameThenRemove) {
  ASSERT_TRUE(fs().WriteFile("f", Bytes{1}).ok());
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().Hardlink("f", "d/g").ok());
  ASSERT_TRUE(fs().Rename("f", "d/h").ok());
  EXPECT_EQ(fs().ReadFile("d/g").value(), Bytes{1});
  EXPECT_EQ(fs().ReadFile("d/h").value(), Bytes{1});
  ASSERT_TRUE(fs().Remove("d/h").ok());
  EXPECT_EQ(fs().ReadFile("d/g").value(), Bytes{1});
  ASSERT_TRUE(fs().Remove("d/g").ok());
  // The data object is gone from the server once the last link dies.
  EXPECT_TRUE(machine_->afs->List("nxd/").value().empty());
}

TEST_F(EdgeCaseTest, RenameDirectoryIntoItselfRejectedShallow) {
  ASSERT_TRUE(fs().Mkdir("a").ok());
  // Renaming a directory onto itself (same path) is a no-op-ish edge; our
  // semantics: source is found, target name equals source in same dir —
  // it gets removed and re-added. Content must survive.
  ASSERT_TRUE(fs().Touch("a/f").ok());
  ASSERT_TRUE(fs().Rename("a", "a").ok());
  EXPECT_TRUE(fs().Lookup("a/f").ok());
}

TEST_F(EdgeCaseTest, ZeroAndHugeNamesInOneBucketBoundary) {
  // Exactly fill one bucket (128), then one more: the split must keep all
  // entries findable warm and cold.
  ASSERT_TRUE(fs().Mkdir("d").ok());
  for (int i = 0; i < 129; ++i) {
    ASSERT_TRUE(fs().Touch("d/e" + std::to_string(i)).ok()) << i;
  }
  fs().DropAllCaches();
  EXPECT_EQ(fs().ListDir("d").value().size(), 129u);
  EXPECT_TRUE(fs().Lookup("d/e128").ok());
  EXPECT_TRUE(fs().Lookup("d/e0").ok());
}


TEST_F(EdgeCaseTest, CacheLimitsEnforcedWithLru) {
  auto& enclave = fs().enclave();
  enclave.EcallSetCacheLimits(/*dirnodes=*/3, /*filenodes=*/4);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs().Mkdir("dir" + std::to_string(i)).ok());
    ASSERT_TRUE(fs().WriteFile("dir" + std::to_string(i) + "/f",
                               Bytes{static_cast<std::uint8_t>(i)}).ok());
  }
  EXPECT_LE(enclave.cached_dirnodes(), 4u);  // limit + at most the in-flight op
  EXPECT_LE(enclave.cached_filenodes(), 5u);

  // Everything stays readable: evicted metadata is simply re-fetched and
  // re-decrypted on demand.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fs().ReadFile("dir" + std::to_string(i) + "/f").value(),
              Bytes{static_cast<std::uint8_t>(i)})
        << i;
  }
}

TEST_F(EdgeCaseTest, TinyCacheStillHandlesDeepPaths) {
  // A traversal deeper than the dirnode cache limit: entries used by the
  // op in flight are pinned, so the walk must still succeed.
  fs().enclave().EcallSetCacheLimits(2, 2);
  std::string path;
  for (int i = 0; i < 12; ++i) {
    path += (i == 0 ? "" : "/") + std::string("p") + std::to_string(i);
    ASSERT_TRUE(fs().Mkdir(path).ok()) << path;
  }
  ASSERT_TRUE(fs().WriteFile(path + "/leaf", Bytes{1}).ok());
  fs().DropAllCaches();
  EXPECT_EQ(fs().ReadFile(path + "/leaf").value(), Bytes{1});
}

TEST(MultiVolume, TwoVolumesShareOneServerWithoutInterference) {
  test::World world;
  auto& owen = world.AddMachine("owen");
  auto& alice = world.AddMachine("alice");

  auto v1 = owen.nexus->CreateVolume(owen.user).value();
  auto v2 = alice.nexus->CreateVolume(alice.user).value();
  ASSERT_NE(v1.volume_uuid, v2.volume_uuid);

  ASSERT_TRUE(owen.nexus->WriteFile("mine", Bytes{1}).ok());
  ASSERT_TRUE(alice.nexus->WriteFile("mine", Bytes{2}).ok());

  EXPECT_EQ(owen.nexus->ReadFile("mine").value(), Bytes{1});
  EXPECT_EQ(alice.nexus->ReadFile("mine").value(), Bytes{2});

  // Alice's sealed rootkey can never open Owen's volume.
  ASSERT_TRUE(alice.nexus->Unmount().ok());
  EXPECT_FALSE(
      alice.nexus->Mount(alice.user, v1.volume_uuid, v2.sealed_rootkey).ok());
}

TEST(VolumeConfig, TinyChunksAndTinyBuckets) {
  test::World world;
  auto& m = world.AddMachine("owen");
  enclave::VolumeConfig config;
  config.chunk_size = 256;
  config.dirnode_bucket_size = 2;
  ASSERT_TRUE(m.nexus->CreateVolume(m.user, config).ok());

  crypto::HmacDrbg rng(AsBytes("tiny"));
  const Bytes content = rng.Generate(5000); // ~20 chunks
  ASSERT_TRUE(m.nexus->WriteFile("f", content).ok());
  EXPECT_EQ(m.nexus->ReadFile("f").value(), content);

  ASSERT_TRUE(m.nexus->Mkdir("d").ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(m.nexus->Touch("d/x" + std::to_string(i)).ok());
  }
  m.nexus->DropAllCaches();
  EXPECT_EQ(m.nexus->ListDir("d").value().size(), 9u); // 5 buckets walked
}

TEST(VolumeConfig, RejectsZeroedConfig) {
  test::World world;
  auto& m = world.AddMachine("owen");
  enclave::VolumeConfig config;
  config.chunk_size = 0;
  EXPECT_FALSE(m.nexus->CreateVolume(m.user, config).ok());
}

} // namespace
} // namespace nexus
