// Randomized multi-client stress: two mounted clients on separate machines
// interleave hundreds of random operations against one shared untrusted
// server. Invariants checked throughout and at the end:
//  * no operation ever fails with an integrity violation (locking + the
//    reload-under-lock discipline keep metadata consistent),
//  * both clients converge to an identical view of the tree,
//  * a cold third session can read everything.
#include <gtest/gtest.h>

#include <map>

#include "test_env.hpp"
#include "trace/trace.hpp"

namespace nexus {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owen_ = &world_.AddMachine("owen");
    alice_ = &world_.AddMachine("alice");
    auto handle = owen_->nexus->CreateVolume(owen_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();

    ASSERT_TRUE(alice_->nexus->PublishIdentity(alice_->user).ok());
    ASSERT_TRUE(owen_->nexus
                    ->GrantAccess(owen_->user, "alice", alice_->user.public_key())
                    .ok());
    auto alice_handle = alice_->nexus->AcceptGrant(
        alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
    ASSERT_TRUE(alice_handle.ok());
    ASSERT_TRUE(alice_->nexus
                    ->Mount(alice_->user, handle_.volume_uuid,
                            alice_handle->sealed_rootkey)
                    .ok());
    ASSERT_TRUE(owen_->nexus
                    ->SetAcl("", "alice",
                             enclave::kPermRead | enclave::kPermWrite)
                    .ok());
    // Shared working directories, writable by both.
    for (const char* d : {"w0", "w1", "w2"}) {
      ASSERT_TRUE(owen_->nexus->Mkdir(d).ok());
      ASSERT_TRUE(owen_->nexus
                      ->SetAcl(d, "alice",
                               enclave::kPermRead | enclave::kPermWrite)
                      .ok());
    }
  }

  /// Flat model of what the volume should contain.
  using Model = std::map<std::string, Bytes>;

  void RandomOps(int count) {
    crypto::HmacDrbg rng(AsBytes("stress-ops"));
    std::vector<std::string> files;
    for (int i = 0; i < count; ++i) {
      core::NexusClient& client =
          rng.Below(2) == 0 ? *owen_->nexus : *alice_->nexus;
      const std::string dir = "w" + std::to_string(rng.Below(3));
      const int action = static_cast<int>(rng.Below(10));

      if (action < 4 || files.empty()) { // create/overwrite
        const std::string path =
            dir + "/f" + std::to_string(rng.Below(40));
        const Bytes content = rng.Generate(1 + rng.Below(2000));
        const Status s = client.WriteFile(path, content);
        ASSERT_TRUE(s.ok()) << i << ": write " << path << ": " << s.ToString();
        model_[path] = content;
        files.push_back(path);
      } else if (action < 6) { // read (either client) and cross-check
        const std::string& path = files[rng.Below(files.size())];
        if (!model_.contains(path)) continue;
        auto content = client.ReadFile(path);
        ASSERT_TRUE(content.ok()) << i << ": read " << path << ": "
                                  << content.status().ToString();
        EXPECT_EQ(*content, model_[path]) << path;
      } else if (action < 8) { // remove
        const std::string path = files[rng.Below(files.size())];
        if (!model_.contains(path)) continue;
        const Status s = client.Remove(path);
        ASSERT_TRUE(s.ok()) << i << ": remove " << path << ": " << s.ToString();
        model_.erase(path);
      } else { // rename within/between shared dirs
        const std::string from = files[rng.Below(files.size())];
        if (!model_.contains(from)) continue;
        const std::string to =
            "w" + std::to_string(rng.Below(3)) + "/r" +
            std::to_string(rng.Below(40));
        if (from == to) continue;
        const Status s = client.Rename(from, to);
        ASSERT_TRUE(s.ok()) << i << ": rename " << from << "->" << to << ": "
                            << s.ToString();
        model_[to] = model_[from];
        if (to != from) model_.erase(from);
        files.push_back(to);
      }
    }
  }

  /// Reads the full tree through `client` into a flat model.
  Model Snapshot(core::NexusClient& client) {
    Model out;
    for (const char* d : {"w0", "w1", "w2"}) {
      auto entries = client.ListDir(d);
      EXPECT_TRUE(entries.ok()) << entries.status().ToString();
      if (!entries.ok()) continue;
      for (const auto& e : *entries) {
        const std::string path = std::string(d) + "/" + e.name;
        auto content = client.ReadFile(path);
        EXPECT_TRUE(content.ok()) << path;
        if (content.ok()) out[path] = *content;
      }
    }
    return out;
  }

  test::World world_;
  test::Machine* owen_ = nullptr;
  test::Machine* alice_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
  Model model_;
};

TEST_F(StressTest, InterleavedClientsConverge) {
  RandomOps(400);

  const Model owen_view = Snapshot(*owen_->nexus);
  const Model alice_view = Snapshot(*alice_->nexus);
  EXPECT_EQ(owen_view, alice_view);
  EXPECT_EQ(owen_view, model_);

  // A completely cold third session agrees too.
  owen_->afs->FlushCache();
  core::NexusClient cold(*owen_->runtime, *owen_->afs,
                         world_.intel().root_public_key());
  ASSERT_TRUE(
      cold.Mount(owen_->user, handle_.volume_uuid, handle_.sealed_rootkey).ok());
  EXPECT_EQ(Snapshot(cold), model_);
}

// Soak with tracing enabled: the observability layer must never disturb
// correctness, every ProfileSnapshot counter must be monotone across
// rounds (gauges exempt), and the snapshot delta semantics are pinned.
TEST_F(StressTest, TracedSoakKeepsProfileCountersMonotone) {
  struct TracingGuard {
    TracingGuard() {
      trace::SetEnabled(true);
      trace::ResetTrace();
      trace::ResetGlobalHistograms();
    }
    ~TracingGuard() {
      trace::SetEnabled(false);
      trace::ResetTrace();
      trace::ResetGlobalHistograms();
    }
  } tracing;

  auto prev = owen_->nexus->Profile();
  for (int round = 0; round < 4; ++round) {
    RandomOps(60);
    const auto cur = owen_->nexus->Profile();

    // Counters only ever grow.
    EXPECT_GE(cur.io_seconds, prev.io_seconds) << round;
    EXPECT_GE(cur.enclave_seconds, prev.enclave_seconds) << round;
    EXPECT_GE(cur.metadata_io_seconds, prev.metadata_io_seconds) << round;
    EXPECT_GE(cur.data_io_seconds, prev.data_io_seconds) << round;
    EXPECT_GE(cur.journal_io_seconds, prev.journal_io_seconds) << round;
    EXPECT_GE(cur.journal.records_committed, prev.journal.records_committed);
    EXPECT_GE(cur.journal.ops_committed, prev.journal.ops_committed);
    EXPECT_GE(cur.journal.checkpoints, prev.journal.checkpoints);
    EXPECT_GE(cur.parallel.chunks_encrypted, prev.parallel.chunks_encrypted);
    EXPECT_GE(cur.parallel.chunks_decrypted, prev.parallel.chunks_decrypted);
    EXPECT_GE(cur.parallel.parallel_batches, prev.parallel.parallel_batches);
    EXPECT_GE(cur.parallel.worker_busy_seconds,
              prev.parallel.worker_busy_seconds);
    EXPECT_GE(cur.net.rpcs, prev.net.rpcs);
    EXPECT_GE(cur.net.retries, prev.net.retries);
    EXPECT_GE(cur.ecall_latency.count, prev.ecall_latency.count);
    EXPECT_GE(cur.journal_commit_latency.count,
              prev.journal_commit_latency.count);
    EXPECT_GE(cur.trace_spans, prev.trace_spans);
    EXPECT_GT(cur.ecall_latency.count, prev.ecall_latency.count) << round;
    EXPECT_GT(cur.trace_spans, prev.trace_spans) << round;

    // Delta semantics: counters subtract, gauges keep the later sample.
    const auto delta = cur - prev;
    EXPECT_EQ(delta.ecall_latency.count,
              cur.ecall_latency.count - prev.ecall_latency.count);
    EXPECT_EQ(delta.ecall_latency.p50_ms, cur.ecall_latency.p50_ms);
    EXPECT_EQ(delta.ecall_latency.p99_ms, cur.ecall_latency.p99_ms);
    EXPECT_EQ(delta.journal_commit_latency.p50_ms,
              cur.journal_commit_latency.p50_ms);
    EXPECT_EQ(delta.parallel.peak_queue_depth, cur.parallel.peak_queue_depth);
    EXPECT_EQ(delta.net.rpc_p50_ms, cur.net.rpc_p50_ms);
    EXPECT_EQ(delta.net.rpc_p99_ms, cur.net.rpc_p99_ms);
    EXPECT_EQ(delta.trace_spans, cur.trace_spans - prev.trace_spans);

    prev = cur;
  }

  // The tracer agrees with the profiler: the snapshot field mirrors the
  // span counter, and ecall spans match the ecall histogram one-to-one
  // (both clients record into the same process-wide registry).
  EXPECT_EQ(prev.trace_spans, trace::CompletedSpanCount());
  const auto spans = trace::TraceSnapshot();
  std::uint64_t ecall_spans = 0;
  for (const auto& s : spans) {
    if (std::string_view(s.category) == "ecall") ++ecall_spans;
  }
  EXPECT_EQ(ecall_spans, trace::GlobalHistogram("ecall").Count());
  EXPECT_EQ(trace::DroppedSpanCount(), 0u);

  // And tracing never disturbed convergence.
  EXPECT_EQ(Snapshot(*owen_->nexus), model_);
  EXPECT_EQ(Snapshot(*alice_->nexus), model_);
}

TEST_F(StressTest, ConvergesUnderTinyCaches) {
  // Same property with aggressive eviction on both enclaves.
  owen_->nexus->enclave().EcallSetCacheLimits(2, 3);
  alice_->nexus->enclave().EcallSetCacheLimits(2, 3);
  RandomOps(200);
  EXPECT_EQ(Snapshot(*owen_->nexus), model_);
  EXPECT_EQ(Snapshot(*alice_->nexus), model_);
}

} // namespace
} // namespace nexus
