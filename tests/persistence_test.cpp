// Persistent local state across enclave restarts: the sealed version table
// (cross-session rollback detection, §VI-C) and volumes on a durable
// DiskBackend.
#include <gtest/gtest.h>

#include <filesystem>

#include "test_env.hpp"

namespace nexus {
namespace {

class VersionTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();
  }

  /// Fresh enclave session on the same machine.
  std::unique_ptr<core::NexusClient> Restart() {
    (void)machine_->nexus->Unmount();
    machine_->afs->FlushCache();
    auto fresh = std::make_unique<core::NexusClient>(
        *machine_->runtime, *machine_->afs, world_.intel().root_public_key());
    return fresh;
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(VersionTableTest, SealAndRestoreRoundTrip) {
  ASSERT_TRUE(machine_->nexus->Mkdir("d").ok());
  ASSERT_TRUE(machine_->nexus->Touch("d/f").ok());
  auto sealed = machine_->nexus->ExportSealedVersionTable();
  ASSERT_TRUE(sealed.ok());
  auto fresh = Restart();
  EXPECT_TRUE(fresh->ImportSealedVersionTable(*sealed).ok());
}

TEST_F(VersionTableTest, CrossSessionRollbackDetectedWithTable) {
  ASSERT_TRUE(machine_->nexus->Mkdir("d").ok());
  ASSERT_TRUE(machine_->nexus->Touch("d/v1").ok());

  // Snapshot the ENTIRE volume, then make one more update. A rollback of
  // the whole consistent snapshot defeats the bucket MACs — only the
  // locally persisted version table can catch it.
  std::vector<std::pair<std::string, Bytes>> snapshot;
  const auto names = machine_->afs->List("").value();
  for (const auto& name : names) {
    snapshot.emplace_back(name, world_.server().AdversarySnapshot(name).value());
  }
  ASSERT_TRUE(machine_->nexus->Touch("d/v2").ok());

  // Persist the version table ("shut down" with current knowledge).
  const Bytes sealed_table =
      machine_->nexus->ExportSealedVersionTable().value();

  for (const auto& [name, bytes] : snapshot) {
    ASSERT_TRUE(world_.server().AdversaryRollback(name, bytes).ok());
  }

  // Victim restarts, loads its sealed version table, remounts.
  auto fresh = Restart();
  ASSERT_TRUE(fresh->ImportSealedVersionTable(sealed_table).ok());
  ASSERT_TRUE(
      fresh->Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  const auto r = fresh->ListDir("d");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
  EXPECT_NE(r.status().message().find("stale"), std::string::npos)
      << "expected the version table (not a MAC) to catch this: "
      << r.status().ToString();
}

TEST_F(VersionTableTest, CrossSessionRollbackInvisibleWithoutTable) {
  // Documents the limitation the paper acknowledges in §VI-C: a cold
  // enclave with no local version state cannot tell an old-but-authentic
  // volume from the current one. We roll back the *entire* volume.
  ASSERT_TRUE(machine_->nexus->Mkdir("d").ok());
  ASSERT_TRUE(machine_->nexus->Touch("d/v1").ok());

  std::vector<std::pair<std::string, Bytes>> snapshot;
  const auto names = machine_->afs->List("").value();
  for (const auto& name : names) {
    snapshot.emplace_back(name, world_.server().AdversarySnapshot(name).value());
  }
  ASSERT_TRUE(machine_->nexus->Touch("d/v2").ok());
  for (const auto& [name, bytes] : snapshot) {
    ASSERT_TRUE(world_.server().AdversaryRollback(name, bytes).ok());
  }
  // Remove objects created after the snapshot (full state rollback).
  const auto now_names = machine_->afs->List("").value();
  for (const auto& name : now_names) {
    bool existed = false;
    for (const auto& [old_name, bytes] : snapshot) existed |= old_name == name;
    if (!existed) (void)world_.server().AdversaryWrite(name, Bytes{});
  }

  auto fresh = Restart();
  ASSERT_TRUE(
      fresh->Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  auto entries = fresh->ListDir("d");
  ASSERT_TRUE(entries.ok()); // accepted: no local state to contradict it
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(VersionTableTest, TableMergeTakesMaximum) {
  ASSERT_TRUE(machine_->nexus->Mkdir("d").ok());
  const Bytes old_table = machine_->nexus->ExportSealedVersionTable().value();
  ASSERT_TRUE(machine_->nexus->Touch("d/f").ok());
  // Importing the OLD table must not lower recorded versions: current
  // state remains acceptable afterwards.
  ASSERT_TRUE(machine_->nexus->ImportSealedVersionTable(old_table).ok());
  EXPECT_TRUE(machine_->nexus->ListDir("d").ok());
}

TEST_F(VersionTableTest, TableIsMachineBound) {
  const Bytes sealed = machine_->nexus->ExportSealedVersionTable().value();
  auto& other = world_.AddMachine("other");
  EXPECT_FALSE(other.nexus->ImportSealedVersionTable(sealed).ok());
}

TEST(DiskPersistence, VolumeSurvivesFullRestart) {
  // Everything durable: server objects on a DiskBackend, sealed rootkey,
  // sealed version table. Simulates stopping and restarting the world.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nexus-persist-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  crypto::HmacDrbg rng(AsBytes("persist"));
  sgx::IntelAttestationService intel(AsBytes("intel"));
  auto cpu = intel.ProvisionCpu(AsBytes("cpu"));
  const core::UserKey owen = core::UserKey::Generate("owen", rng);

  Uuid volume_uuid;
  Bytes sealed_rootkey;
  Bytes sealed_versions;
  {
    storage::SimClock clock;
    storage::AfsServer server(
        std::make_unique<storage::DiskBackend>(
            storage::DiskBackend::Open(dir.string()).value()),
        clock);
    storage::AfsClient afs(server, "owen");
    sgx::EnclaveRuntime runtime(*cpu, sgx::NexusEnclaveImage(), AsBytes("r1"));
    core::NexusClient nexus(runtime, afs, intel.root_public_key());
    auto handle = nexus.CreateVolume(owen).value();
    volume_uuid = handle.volume_uuid;
    sealed_rootkey = handle.sealed_rootkey;
    ASSERT_TRUE(nexus.Mkdir("docs").ok());
    ASSERT_TRUE(nexus.WriteFile("docs/f", Bytes{1, 2, 3}).ok());
    sealed_versions = nexus.ExportSealedVersionTable().value();
  }
  {
    storage::SimClock clock;
    storage::AfsServer server(
        std::make_unique<storage::DiskBackend>(
            storage::DiskBackend::Open(dir.string()).value()),
        clock);
    storage::AfsClient afs(server, "owen");
    sgx::EnclaveRuntime runtime(*cpu, sgx::NexusEnclaveImage(), AsBytes("r2"));
    core::NexusClient nexus(runtime, afs, intel.root_public_key());
    ASSERT_TRUE(nexus.ImportSealedVersionTable(sealed_versions).ok());
    ASSERT_TRUE(nexus.Mount(owen, volume_uuid, sealed_rootkey).ok());
    EXPECT_EQ(nexus.ReadFile("docs/f").value(), (Bytes{1, 2, 3}));
  }
  std::filesystem::remove_all(dir);
}

} // namespace
} // namespace nexus
