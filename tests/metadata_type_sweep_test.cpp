// Parameterized sweep of the metadata encryption framing across every
// object type and a spread of body sizes, plus cross-type/uuid confusion
// checks for each combination.
#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "enclave/metadata_codec.hpp"

namespace nexus::enclave {
namespace {

struct SweepCase {
  MetaType type;
  std::size_t body_size;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* type = "";
  switch (info.param.type) {
    case MetaType::kSupernode: type = "Supernode"; break;
    case MetaType::kDirnodeMain: type = "DirnodeMain"; break;
    case MetaType::kDirnodeBucket: type = "DirnodeBucket"; break;
    case MetaType::kFilenode: type = "Filenode"; break;
    case MetaType::kUserIdentity: type = "UserIdentity"; break;
  }
  return std::string(type) + "_" + std::to_string(info.param.body_size);
}

class MetadataTypeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MetadataTypeSweep, EncodeDecodeAndConfusionChecks) {
  const SweepCase& p = GetParam();
  crypto::HmacDrbg rng(AsBytes("type-sweep"));
  const RootKey rootkey{0xaa, 0xbb};
  const Preamble preamble{p.type, rng.NewUuid(), 3};
  const Bytes body = rng.Generate(p.body_size);

  const Bytes blob = EncodeMetadata(preamble, body, rootkey, rng).value();

  // Round trip under the right expectations.
  auto decoded = DecodeMetadata(blob, rootkey, p.type, preamble.uuid);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->body, body);
  EXPECT_EQ(decoded->preamble.version, 3u);

  // Every OTHER expected type must be rejected (type confusion).
  for (const MetaType other :
       {MetaType::kSupernode, MetaType::kDirnodeMain, MetaType::kDirnodeBucket,
        MetaType::kFilenode, MetaType::kUserIdentity}) {
    if (other == p.type) continue;
    EXPECT_FALSE(DecodeMetadata(blob, rootkey, other, preamble.uuid).ok());
  }

  // Wrong uuid and wrong rootkey must be rejected.
  EXPECT_FALSE(DecodeMetadata(blob, rootkey, p.type, rng.NewUuid()).ok());
  const RootKey other_key{0x11};
  EXPECT_FALSE(DecodeMetadata(blob, other_key, p.type, preamble.uuid).ok());

  // Ciphertext expansion is bounded and fixed: preamble(29) + context(56)
  // + length prefix(4) + body + tag(16).
  EXPECT_EQ(blob.size(), 29 + 56 + 4 + p.body_size + 16);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSizes, MetadataTypeSweep,
    ::testing::Values(SweepCase{MetaType::kSupernode, 0},
                      SweepCase{MetaType::kSupernode, 300},
                      SweepCase{MetaType::kDirnodeMain, 64},
                      SweepCase{MetaType::kDirnodeMain, 4096},
                      SweepCase{MetaType::kDirnodeBucket, 1},
                      SweepCase{MetaType::kDirnodeBucket, 9000},
                      SweepCase{MetaType::kFilenode, 128},
                      SweepCase{MetaType::kFilenode, 65536},
                      SweepCase{MetaType::kUserIdentity, 100}),
    CaseName);

} // namespace
} // namespace nexus::enclave
