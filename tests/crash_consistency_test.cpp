// Crash-consistency sweep: a client "crashes" after its k-th storage
// mutation, for every k in the operation's mutation sequence. Whatever the
// crash point, a fresh victim session must find the volume fully readable
// — every directory listable, every committed file intact. At worst the
// in-flight operation is wholly absent (orphaned objects are allowed;
// dangling references and MAC mismatches are not).
#include <gtest/gtest.h>

#include "test_env.hpp"

namespace nexus {
namespace {

/// Wraps the real ocall bridge; after `fail_after` mutations every storage
/// operation fails (the process died — nothing further reaches the wire).
class CrashingStore final : public enclave::StorageOcalls {
 public:
  CrashingStore(storage::AfsClient& afs, int fail_after)
      : inner_(afs), fail_after_(fail_after) {}

  [[nodiscard]] int mutations() const noexcept { return mutations_; }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  Result<enclave::ObjectBlob> FetchMeta(const Uuid& uuid) override {
    if (crashed_) return Dead();
    return inner_.FetchMeta(uuid);
  }
  Result<std::uint64_t> StoreMeta(const Uuid& uuid, ByteSpan data) override {
    if (Mutate()) return Dead<std::uint64_t>();
    return inner_.StoreMeta(uuid, data);
  }
  Status RemoveMeta(const Uuid& uuid) override {
    if (Mutate()) return DeadStatus();
    return inner_.RemoveMeta(uuid);
  }
  Result<enclave::ObjectBlob> FetchData(const Uuid& uuid) override {
    if (crashed_) return Dead();
    return inner_.FetchData(uuid);
  }
  Status StoreData(const Uuid& uuid, ByteSpan data,
                   std::uint64_t changed_bytes) override {
    if (Mutate()) return DeadStatus();
    return inner_.StoreData(uuid, data, changed_bytes);
  }
  Status RemoveData(const Uuid& uuid) override {
    if (Mutate()) return DeadStatus();
    return inner_.RemoveData(uuid);
  }
  Status LockMeta(const Uuid& uuid) override {
    if (crashed_) return DeadStatus();
    return inner_.LockMeta(uuid);
  }
  Status UnlockMeta(const Uuid& uuid) override {
    if (crashed_) return DeadStatus();
    return inner_.UnlockMeta(uuid);
  }
  bool CacheFresh(const Uuid& uuid, std::uint64_t v) override {
    return !crashed_ && inner_.CacheFresh(uuid, v);
  }

 private:
  bool Mutate() {
    if (crashed_) return true;
    ++mutations_;
    if (fail_after_ >= 0 && mutations_ > fail_after_) crashed_ = true;
    return crashed_;
  }
  static Status DeadStatus() {
    return Error(ErrorCode::kIOError, "simulated crash");
  }
  template <typename T = enclave::ObjectBlob>
  static Result<T> Dead() {
    return Error(ErrorCode::kIOError, "simulated crash");
  }

  core::AfsMetadataStore inner_;
  int fail_after_;
  int mutations_ = 0;
  bool crashed_ = false;
};

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();

    // A volume with some committed state the crash must never corrupt.
    auto& fs = *machine_->nexus;
    ASSERT_TRUE(fs.Mkdir("stable").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          fs.WriteFile("stable/f" + std::to_string(i), Bytes(100, 7)).ok());
    }
    ASSERT_TRUE(fs.Mkdir("work").ok());
    ASSERT_TRUE(fs.WriteFile("work/victim", Bytes(100, 9)).ok());
    ASSERT_TRUE(machine_->nexus->Unmount().ok());
    // Release any locks a failed run may hold? None yet.
  }

  /// Mounts a short-lived enclave over a CrashingStore and runs `op`.
  /// Returns the number of mutations the op performs when unobstructed.
  int RunWithCrash(int fail_after,
                   const std::function<void(enclave::NexusEnclave&)>& op) {
    CrashingStore store(*machine_->afs, fail_after);
    sgx::EnclaveRuntime runtime(*machine_->cpu, sgx::NexusEnclaveImage(),
                                AsBytes("crash-run"));
    enclave::NexusEnclave enclave(runtime, store,
                                  world_.intel().root_public_key());
    // Manual mount (the helper client always uses the real store).
    auto nonce = enclave.EcallAuthChallenge(machine_->user.public_key(),
                                            handle_.sealed_rootkey,
                                            handle_.volume_uuid);
    EXPECT_TRUE(nonce.ok());
    const Bytes supernode =
        machine_->afs->Fetch("nx/" + handle_.volume_uuid.ToString()).value();
    const auto sig = machine_->user.Sign(Concat(*nonce, supernode));
    EXPECT_TRUE(enclave.EcallAuthResponse(sig).ok());

    op(enclave);
    // Crash: the enclave object is simply dropped; locks die with the
    // client in AFS (we release them here to model lease expiry).
    ReleaseAllLocks();
    return store.mutations();
  }

  void ReleaseAllLocks() {
    // Advisory locks are leases in AFS; model expiry by force-unlocking.
    const auto names = machine_->afs->List("nx").value();
    for (const auto& name : names) {
      (void)machine_->afs->Unlock(name);
    }
  }

  /// Full-volume readability check from a pristine session.
  void VerifyVolumeReadable(std::size_t min_stable_files) {
    machine_->afs->FlushCache();
    core::NexusClient fresh(*machine_->runtime, *machine_->afs,
                            world_.intel().root_public_key());
    ASSERT_TRUE(
        fresh.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
            .ok());
    std::size_t files_seen = 0;
    std::function<void(const std::string&)> walk = [&](const std::string& dir) {
      auto entries = fresh.ListDir(dir);
      ASSERT_TRUE(entries.ok()) << dir << ": " << entries.status().ToString();
      for (const auto& e : *entries) {
        const std::string full = dir.empty() ? e.name : dir + "/" + e.name;
        if (e.type == enclave::EntryType::kDirectory) {
          walk(full);
        } else if (e.type == enclave::EntryType::kFile) {
          auto content = fresh.ReadFile(full);
          ASSERT_TRUE(content.ok()) << full << ": " << content.status().ToString();
          ++files_seen;
        }
      }
    };
    walk("");
    EXPECT_GE(files_seen, min_stable_files);
    ASSERT_TRUE(fresh.Unmount().ok());
  }

  /// Sweeps every crash point of `op` and verifies consistency after each.
  void SweepCrashPoints(const std::function<void(enclave::NexusEnclave&)>& op,
                        std::size_t min_stable_files) {
    const int total = RunWithCrash(-1, op); // unobstructed baseline
    ASSERT_GT(total, 0);
    VerifyVolumeReadable(min_stable_files);
    for (int k = 0; k < total; ++k) {
      SCOPED_TRACE("crash after mutation " + std::to_string(k));
      RunWithCrash(k, op);
      VerifyVolumeReadable(min_stable_files);
    }
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(CrashConsistencyTest, CreateFile) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallTouch("work/new-file", enclave::EntryType::kFile);
      },
      /*min_stable_files=*/6);
}

TEST_F(CrashConsistencyTest, CreateDirectory) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallTouch("work/new-dir", enclave::EntryType::kDirectory);
      },
      6);
}

TEST_F(CrashConsistencyTest, RemoveFile) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) { (void)e.EcallRemove("work/victim"); }, 5);
}

TEST_F(CrashConsistencyTest, WriteContent) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        const Bytes content(5000, 0x42);
        (void)e.EcallEncrypt("work/victim", content);
      },
      5);
}

TEST_F(CrashConsistencyTest, RenameAcrossDirectories) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallRename("work/victim", "stable/moved");
      },
      5);
}

TEST_F(CrashConsistencyTest, RenameReplacingTarget) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallRename("work/victim", "stable/f0");
      },
      4); // f0 may legitimately be replaced mid-flight
}

} // namespace
} // namespace nexus
