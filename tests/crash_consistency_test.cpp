// Crash-consistency sweep: a client "crashes" after its k-th storage
// mutation, for every k in the operation's mutation sequence. Whatever the
// crash point, a fresh victim session must find the volume fully readable
// — every directory listable, every committed file intact. At worst the
// in-flight operation is wholly absent (orphaned objects are allowed;
// dangling references and MAC mismatches are not).
#include <gtest/gtest.h>

#include "test_env.hpp"

namespace nexus {
namespace {

/// Wraps the real ocall bridge; after `fail_after` mutations every storage
/// operation fails (the process died — nothing further reaches the wire).
class CrashingStore final : public enclave::StorageOcalls {
 public:
  CrashingStore(storage::AfsClient& afs, int fail_after)
      : inner_(afs), fail_after_(fail_after) {}

  [[nodiscard]] int mutations() const noexcept { return mutations_; }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  Result<enclave::ObjectBlob> FetchMeta(const Uuid& uuid) override {
    if (crashed_) return Dead();
    return inner_.FetchMeta(uuid);
  }
  Result<std::uint64_t> StoreMeta(const Uuid& uuid, ByteSpan data) override {
    if (Mutate()) return Dead<std::uint64_t>();
    return inner_.StoreMeta(uuid, data);
  }
  Status RemoveMeta(const Uuid& uuid) override {
    if (Mutate()) return DeadStatus();
    return inner_.RemoveMeta(uuid);
  }
  Result<enclave::ObjectBlob> FetchData(const Uuid& uuid) override {
    if (crashed_) return Dead();
    return inner_.FetchData(uuid);
  }
  Status StoreData(const Uuid& uuid, ByteSpan data,
                   std::uint64_t changed_bytes) override {
    if (Mutate()) return DeadStatus();
    return inner_.StoreData(uuid, data, changed_bytes);
  }
  Status RemoveData(const Uuid& uuid) override {
    if (Mutate()) return DeadStatus();
    return inner_.RemoveData(uuid);
  }
  Status LockMeta(const Uuid& uuid) override {
    if (crashed_) return DeadStatus();
    return inner_.LockMeta(uuid);
  }
  Status UnlockMeta(const Uuid& uuid) override {
    if (crashed_) return DeadStatus();
    return inner_.UnlockMeta(uuid);
  }
  bool CacheFresh(const Uuid& uuid, std::uint64_t v) override {
    return !crashed_ && inner_.CacheFresh(uuid, v);
  }
  Result<Bytes> FetchJournal(const std::string& name) override {
    if (crashed_) return Dead<Bytes>();
    return inner_.FetchJournal(name);
  }
  Status StoreJournal(const std::string& name, ByteSpan data) override {
    if (Mutate()) return DeadStatus();
    return inner_.StoreJournal(name, data);
  }
  Status RemoveJournal(const std::string& name) override {
    if (Mutate()) return DeadStatus();
    return inner_.RemoveJournal(name);
  }
  Result<std::vector<std::string>> ListJournal() override {
    if (crashed_) return Dead<std::vector<std::string>>();
    return inner_.ListJournal();
  }

 private:
  bool Mutate() {
    if (crashed_) return true;
    ++mutations_;
    if (fail_after_ >= 0 && mutations_ > fail_after_) crashed_ = true;
    return crashed_;
  }
  static Status DeadStatus() {
    return Error(ErrorCode::kIOError, "simulated crash");
  }
  template <typename T = enclave::ObjectBlob>
  static Result<T> Dead() {
    return Error(ErrorCode::kIOError, "simulated crash");
  }

  core::AfsMetadataStore inner_;
  int fail_after_;
  int mutations_ = 0;
  bool crashed_ = false;
};

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();

    // A volume with some committed state the crash must never corrupt.
    auto& fs = *machine_->nexus;
    ASSERT_TRUE(fs.Mkdir("stable").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          fs.WriteFile("stable/f" + std::to_string(i), Bytes(100, 7)).ok());
    }
    ASSERT_TRUE(fs.Mkdir("work").ok());
    ASSERT_TRUE(fs.WriteFile("work/victim", Bytes(100, 9)).ok());
    ASSERT_TRUE(machine_->nexus->Unmount().ok());
    // Release any locks a failed run may hold? None yet.
  }

  /// Mounts a short-lived enclave over a CrashingStore and runs `op`.
  /// Returns the number of mutations the op performs when unobstructed.
  /// Every run gets a distinct RNG seed: a crashed run must never be able
  /// to masquerade as the committed run by regenerating identical keys,
  /// IVs, and object UUIDs.
  int RunWithCrash(int fail_after,
                   const std::function<void(enclave::NexusEnclave&)>& op) {
    CrashingStore store(*machine_->afs, fail_after);
    const std::string seed = "crash-run-" + std::to_string(run_counter_++);
    sgx::EnclaveRuntime runtime(*machine_->cpu, sgx::NexusEnclaveImage(),
                                AsBytes(seed));
    enclave::NexusEnclave enclave(runtime, store,
                                  world_.intel().root_public_key());
    // Manual mount (the helper client always uses the real store).
    auto nonce = enclave.EcallAuthChallenge(machine_->user.public_key(),
                                            handle_.sealed_rootkey,
                                            handle_.volume_uuid);
    EXPECT_TRUE(nonce.ok());
    const Bytes supernode =
        machine_->afs->Fetch("nx/" + handle_.volume_uuid.ToString()).value();
    const auto sig = machine_->user.Sign(Concat(*nonce, supernode));
    EXPECT_TRUE(enclave.EcallAuthResponse(sig).ok());

    op(enclave);
    // Crash: the enclave object is simply dropped; locks die with the
    // client in AFS (we release them here to model lease expiry).
    ReleaseAllLocks();
    return store.mutations();
  }

  void ReleaseAllLocks() {
    // Advisory locks are leases in AFS; model expiry by force-unlocking.
    const auto names = machine_->afs->List("nx").value();
    for (const auto& name : names) {
      (void)machine_->afs->Unlock(name);
    }
  }

  /// Full-volume readability check from a pristine session.
  void VerifyVolumeReadable(std::size_t min_stable_files) {
    machine_->afs->FlushCache();
    core::NexusClient fresh(*machine_->runtime, *machine_->afs,
                            world_.intel().root_public_key());
    ASSERT_TRUE(
        fresh.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
            .ok());
    std::size_t files_seen = 0;
    std::function<void(const std::string&)> walk = [&](const std::string& dir) {
      auto entries = fresh.ListDir(dir);
      ASSERT_TRUE(entries.ok()) << dir << ": " << entries.status().ToString();
      for (const auto& e : *entries) {
        const std::string full = dir.empty() ? e.name : dir + "/" + e.name;
        if (e.type == enclave::EntryType::kDirectory) {
          walk(full);
        } else if (e.type == enclave::EntryType::kFile) {
          auto content = fresh.ReadFile(full);
          ASSERT_TRUE(content.ok()) << full << ": " << content.status().ToString();
          ++files_seen;
        }
      }
    };
    walk("");
    EXPECT_GE(files_seen, min_stable_files);
    ASSERT_TRUE(fresh.Unmount().ok());
  }

  /// Sweeps every crash point of `op` and verifies consistency after each.
  void SweepCrashPoints(const std::function<void(enclave::NexusEnclave&)>& op,
                        std::size_t min_stable_files) {
    const int total = RunWithCrash(-1, op); // unobstructed baseline
    ASSERT_GT(total, 0);
    VerifyVolumeReadable(min_stable_files);
    for (int k = 0; k < total; ++k) {
      SCOPED_TRACE("crash after mutation " + std::to_string(k));
      RunWithCrash(k, op);
      VerifyVolumeReadable(min_stable_files);
    }
  }

  /// Like VerifyVolumeReadable, but additionally asserts the two files of
  /// a batched transaction landed atomically: both present or both absent.
  void VerifyBatchAtomic(const std::string& a, const std::string& b,
                         std::size_t min_stable_files) {
    machine_->afs->FlushCache();
    core::NexusClient fresh(*machine_->runtime, *machine_->afs,
                            world_.intel().root_public_key());
    ASSERT_TRUE(
        fresh.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
            .ok());
    const bool have_a = fresh.ReadFile(a).ok();
    const bool have_b = fresh.ReadFile(b).ok();
    EXPECT_EQ(have_a, have_b)
        << "torn batch: " << a << "=" << have_a << " " << b << "=" << have_b;
    ASSERT_TRUE(fresh.Unmount().ok());
    VerifyVolumeReadable(min_stable_files);
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
  int run_counter_ = 0;
};

TEST_F(CrashConsistencyTest, CreateFile) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallTouch("work/new-file", enclave::EntryType::kFile);
      },
      /*min_stable_files=*/6);
}

TEST_F(CrashConsistencyTest, CreateDirectory) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallTouch("work/new-dir", enclave::EntryType::kDirectory);
      },
      6);
}

TEST_F(CrashConsistencyTest, RemoveFile) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) { (void)e.EcallRemove("work/victim"); }, 5);
}

TEST_F(CrashConsistencyTest, WriteContent) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        const Bytes content(5000, 0x42);
        (void)e.EcallEncrypt("work/victim", content);
      },
      5);
}

TEST_F(CrashConsistencyTest, RenameAcrossDirectories) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallRename("work/victim", "stable/moved");
      },
      5);
}

TEST_F(CrashConsistencyTest, RenameReplacingTarget) {
  SweepCrashPoints(
      [](enclave::NexusEnclave& e) {
        (void)e.EcallRename("work/victim", "stable/f0");
      },
      4); // f0 may legitimately be replaced mid-flight
}

// A batched transaction touches several files; the group-commit journal
// record makes the whole batch one durability point. Crashing after any
// prefix of the backend writes must leave either the entire batch or none
// of it — never a torn half-batch. Each crash run uses distinct file names
// so every run exercises a genuine full batch attempt rather than failing
// early against leftovers of the previous run.
TEST_F(CrashConsistencyTest, BatchedCommitAllOrNothing) {
  int run = 0;
  const auto make_op = [&run]() {
    const std::string a = "work/batch-" + std::to_string(run) + "-a";
    const std::string b = "work/batch-" + std::to_string(run) + "-b";
    ++run;
    return [a, b](enclave::NexusEnclave& e) {
      if (!e.EcallBeginBatch().ok()) return;
      (void)e.EcallTouch(a, enclave::EntryType::kFile);
      (void)e.EcallEncrypt(a, Bytes(256, 0x11));
      (void)e.EcallTouch(b, enclave::EntryType::kFile);
      (void)e.EcallEncrypt(b, Bytes(256, 0x22));
      (void)e.EcallCommitBatch();
    };
  };

  // Unobstructed baseline fixes the mutation count for the sweep.
  auto baseline = make_op();
  const std::string a0 = "work/batch-0-a";
  const std::string b0 = "work/batch-0-b";
  const int total = RunWithCrash(-1, baseline);
  ASSERT_GT(total, 0);
  VerifyBatchAtomic(a0, b0, /*min_stable_files=*/6);

  for (int k = 0; k < total; ++k) {
    SCOPED_TRACE("crash after mutation " + std::to_string(k));
    const std::string a = "work/batch-" + std::to_string(run) + "-a";
    const std::string b = "work/batch-" + std::to_string(run) + "-b";
    RunWithCrash(k, make_op());
    VerifyBatchAtomic(a, b, 6);
  }
}

// The journal must also be torn-proof for the implicit per-operation
// batches: crash immediately after the journal record is durable but
// before any checkpoint write, then verify a remount replays the record
// and the operation's effect is fully visible.
TEST_F(CrashConsistencyTest, ReplayAfterCrashBeforeCheckpoint) {
  // A journaled touch defers all metadata stores, so its first backend
  // mutation is the journal record itself. fail_after=1 lets that record
  // land and kills the very next write — the first checkpoint store.
  RunWithCrash(1, [](enclave::NexusEnclave& e) {
    (void)e.EcallTouch("work/replayed", enclave::EntryType::kFile);
  });
  machine_->afs->FlushCache();
  core::NexusClient fresh(*machine_->runtime, *machine_->afs,
                          world_.intel().root_public_key());
  ASSERT_TRUE(
      fresh.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  auto entries = fresh.ListDir("work");
  ASSERT_TRUE(entries.ok());
  bool found = false;
  for (const auto& e : *entries) found |= (e.name == "replayed");
  EXPECT_TRUE(found) << "journal record was durable but not replayed";
  ASSERT_TRUE(fresh.Unmount().ok());
}

} // namespace
} // namespace nexus
