// End-to-end filesystem tests through the full stack: NexusClient ->
// enclave -> AFS simulator.
#include <gtest/gtest.h>

#include "test_env.hpp"

namespace nexus {
namespace {

using enclave::EntryType;

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = std::move(handle).value();
  }

  core::NexusClient& fs() { return *machine_->nexus; }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(FsTest, WriteAndReadBack) {
  const Bytes content = ToBytes(std::string_view("hello nexus"));
  ASSERT_TRUE(fs().WriteFile("a.txt", content).ok());
  EXPECT_EQ(fs().ReadFile("a.txt").value(), content);
}

TEST_F(FsTest, EmptyFile) {
  ASSERT_TRUE(fs().Touch("empty").ok());
  EXPECT_TRUE(fs().ReadFile("empty").value().empty());
  EXPECT_EQ(fs().Lookup("empty")->size, 0u);
}

TEST_F(FsTest, OverwriteChangesContentAndSize) {
  ASSERT_TRUE(fs().WriteFile("f", Bytes(100, 1)).ok());
  ASSERT_TRUE(fs().WriteFile("f", Bytes(5, 2)).ok());
  const Bytes back = fs().ReadFile("f").value();
  EXPECT_EQ(back, Bytes(5, 2));
  EXPECT_EQ(fs().Lookup("f")->size, 5u);
}

TEST_F(FsTest, MultiChunkFiles) {
  // Volume default chunk size is 1 MB; exercise exact/offset boundaries.
  crypto::HmacDrbg rng(AsBytes("chunks"));
  for (const std::size_t size :
       {std::size_t{1 << 20}, std::size_t{(1 << 20) + 1},
        std::size_t{(1 << 20) - 1}, std::size_t{3 << 20},
        std::size_t{(2 << 20) + 12345}}) {
    const Bytes content = rng.Generate(size);
    ASSERT_TRUE(fs().WriteFile("big", content).ok()) << size;
    EXPECT_EQ(fs().ReadFile("big").value(), content) << size;
  }
}

TEST_F(FsTest, NestedDirectories) {
  ASSERT_TRUE(fs().Mkdir("docs").ok());
  ASSERT_TRUE(fs().Mkdir("docs/work").ok());
  ASSERT_TRUE(fs().Mkdir("docs/work/deep").ok());
  ASSERT_TRUE(fs().WriteFile("docs/work/deep/cake.c", Bytes{1, 2}).ok());
  EXPECT_EQ(fs().ReadFile("docs/work/deep/cake.c").value(), (Bytes{1, 2}));

  const auto entries = fs().ListDir("docs/work").value();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "deep");
  EXPECT_EQ(entries[0].type, EntryType::kDirectory);
}

TEST_F(FsTest, LookupSemantics) {
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().WriteFile("d/f", Bytes(10, 1)).ok());

  EXPECT_EQ(fs().Lookup("")->type, EntryType::kDirectory); // root
  EXPECT_EQ(fs().Lookup("d")->type, EntryType::kDirectory);
  EXPECT_EQ(fs().Lookup("d/f")->type, EntryType::kFile);
  EXPECT_EQ(fs().Lookup("d/f")->size, 10u);
  EXPECT_EQ(fs().Lookup("missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Lookup("d/missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Lookup("missing/f").status().code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, DuplicateCreateFails) {
  ASSERT_TRUE(fs().Touch("f").ok());
  EXPECT_EQ(fs().Touch("f").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs().Mkdir("f").code(), ErrorCode::kAlreadyExists);
}

TEST_F(FsTest, RemoveFileAndDirectory) {
  ASSERT_TRUE(fs().WriteFile("f", Bytes(10, 1)).ok());
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().Remove("f").ok());
  EXPECT_EQ(fs().Lookup("f").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs().Remove("d").ok());
  EXPECT_EQ(fs().Remove("d").code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, RemoveNonEmptyDirectoryFails) {
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().Touch("d/f").ok());
  EXPECT_FALSE(fs().Remove("d").ok());
  ASSERT_TRUE(fs().Remove("d/f").ok());
  EXPECT_TRUE(fs().Remove("d").ok());
}

TEST_F(FsTest, RenameWithinDirectory) {
  ASSERT_TRUE(fs().WriteFile("old", Bytes{7}).ok());
  ASSERT_TRUE(fs().Rename("old", "new").ok());
  EXPECT_EQ(fs().Lookup("old").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().ReadFile("new").value(), Bytes{7});
}

TEST_F(FsTest, RenameAcrossDirectories) {
  ASSERT_TRUE(fs().Mkdir("a").ok());
  ASSERT_TRUE(fs().Mkdir("b").ok());
  ASSERT_TRUE(fs().WriteFile("a/f", Bytes{1}).ok());
  ASSERT_TRUE(fs().Rename("a/f", "b/g").ok());
  EXPECT_EQ(fs().ReadFile("b/g").value(), Bytes{1});
  EXPECT_TRUE(fs().ListDir("a").value().empty());
}

TEST_F(FsTest, RenameDirectoryRepinsParent) {
  ASSERT_TRUE(fs().Mkdir("a").ok());
  ASSERT_TRUE(fs().Mkdir("b").ok());
  ASSERT_TRUE(fs().Mkdir("a/sub").ok());
  ASSERT_TRUE(fs().WriteFile("a/sub/f", Bytes{5}).ok());
  ASSERT_TRUE(fs().Rename("a/sub", "b/sub").ok());
  // Traversal through the new location must pass the parent-uuid check.
  EXPECT_EQ(fs().ReadFile("b/sub/f").value(), Bytes{5});
  // Including after a cold restart of all caches.
  fs().DropAllCaches();
  EXPECT_EQ(fs().ReadFile("b/sub/f").value(), Bytes{5});
}

TEST_F(FsTest, RenameReplacesExistingTarget) {
  ASSERT_TRUE(fs().WriteFile("src", Bytes{1}).ok());
  ASSERT_TRUE(fs().WriteFile("dst", Bytes{2}).ok());
  ASSERT_TRUE(fs().Rename("src", "dst").ok());
  EXPECT_EQ(fs().ReadFile("dst").value(), Bytes{1});
  EXPECT_EQ(fs().Lookup("src").status().code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, SymlinkRoundTrip) {
  ASSERT_TRUE(fs().WriteFile("target.txt", Bytes{1}).ok());
  ASSERT_TRUE(fs().Symlink("target.txt", "link").ok());
  EXPECT_EQ(fs().Lookup("link")->type, EntryType::kSymlink);
  EXPECT_EQ(fs().Readlink("link").value(), "target.txt");
  ASSERT_TRUE(fs().Remove("link").ok());
  // Removing the link does not touch the target.
  EXPECT_TRUE(fs().Lookup("target.txt").ok());
}

TEST_F(FsTest, HardlinkSharesContent) {
  ASSERT_TRUE(fs().WriteFile("f", Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(fs().Hardlink("f", "g").ok());
  EXPECT_EQ(fs().ReadFile("g").value(), (Bytes{1, 2, 3}));

  // Content updates are visible through both names (same filenode).
  ASSERT_TRUE(fs().WriteFile("g", Bytes{9}).ok());
  EXPECT_EQ(fs().ReadFile("f").value(), Bytes{9});

  // Removing one name keeps the data alive; removing the last frees it.
  ASSERT_TRUE(fs().Remove("f").ok());
  EXPECT_EQ(fs().ReadFile("g").value(), Bytes{9});
  ASSERT_TRUE(fs().Remove("g").ok());
}

TEST_F(FsTest, LargeDirectorySpansBuckets) {
  // Default bucket size is 128; 300 entries need 3 buckets.
  ASSERT_TRUE(fs().Mkdir("big").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(fs().Touch("big/file-" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(fs().ListDir("big").value().size(), 300u);
  EXPECT_TRUE(fs().Lookup("big/file-250").ok());

  // Survives a cold reload (buckets re-fetched and MAC-verified).
  fs().DropAllCaches();
  EXPECT_EQ(fs().ListDir("big").value().size(), 300u);

  // Delete down to zero; buckets must shrink away cleanly.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(fs().Remove("big/file-" + std::to_string(i)).ok()) << i;
  }
  EXPECT_TRUE(fs().ListDir("big").value().empty());
  EXPECT_TRUE(fs().Remove("big").ok());
}

TEST_F(FsTest, PathValidation) {
  EXPECT_FALSE(fs().Touch("").ok());
  EXPECT_FALSE(fs().Touch("a/../b").ok());
  EXPECT_FALSE(fs().Touch("./a").ok());
  EXPECT_FALSE(fs().Remove("").ok());
  // Extra slashes are tolerated.
  ASSERT_TRUE(fs().Mkdir("d").ok());
  EXPECT_TRUE(fs().Touch("d//f").ok());
  EXPECT_TRUE(fs().Lookup("d/f").ok());
}

TEST_F(FsTest, NamesAndContentAreObfuscatedOnTheServer) {
  const std::string secret_name = "very-secret-name.doc";
  const std::string secret_content = "TOP SECRET PAYLOAD 1234567890";
  ASSERT_TRUE(fs().WriteFile(secret_name, AsBytes(secret_content)).ok());

  // Enumerate everything the server stores: no object name or byte stream
  // may reveal the plaintext filename or content.
  const auto names = machine_->afs->List("").value();
  ASSERT_FALSE(names.empty());
  for (const std::string& object_name : names) {
    EXPECT_EQ(object_name.find(secret_name), std::string::npos) << object_name;
    const Bytes stored = world_.server().AdversaryRead(object_name).value();
    const std::string raw(reinterpret_cast<const char*>(stored.data()),
                          stored.size());
    EXPECT_EQ(raw.find(secret_name), std::string::npos) << object_name;
    EXPECT_EQ(raw.find(secret_content), std::string::npos) << object_name;
  }
}

TEST_F(FsTest, PersistsAcrossEnclaveRestartAndRemount) {
  ASSERT_TRUE(fs().Mkdir("docs").ok());
  ASSERT_TRUE(fs().WriteFile("docs/f", Bytes{4, 5, 6}).ok());
  ASSERT_TRUE(fs().Unmount().ok());

  // Fresh enclave on the same machine: unseal + challenge-response mount.
  core::NexusClient fresh(*machine_->runtime, *machine_->afs,
                          world_.intel().root_public_key());
  ASSERT_TRUE(
      fresh.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  EXPECT_EQ(fresh.ReadFile("docs/f").value(), (Bytes{4, 5, 6}));
}

TEST_F(FsTest, OperationsRequireMount) {
  ASSERT_TRUE(fs().Unmount().ok());
  EXPECT_EQ(fs().Touch("f").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(fs().ReadFile("f").status().code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(fs().Unmount().ok());
}

TEST_F(FsTest, CacheStatsTrackHitsAndMisses) {
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().Touch("d/f").ok());
  const auto misses0 = fs().enclave().cache_stats().dirnode_misses;
  ASSERT_TRUE(fs().Lookup("d/f").ok());
  ASSERT_TRUE(fs().Lookup("d/f").ok());
  const auto& stats = fs().enclave().cache_stats();
  EXPECT_EQ(stats.dirnode_misses, misses0); // warm lookups hit the cache
  EXPECT_GT(stats.dirnode_hits, 0u);
}

} // namespace
} // namespace nexus
