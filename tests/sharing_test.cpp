// Multi-user tests: the §IV-B authentication protocol, the §IV-B1 attested
// rootkey exchange (two machines, in-band over the shared store), directory
// ACLs and revocation semantics.
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "crypto/x25519.hpp"
#include "test_env.hpp"

namespace nexus {
namespace {

using enclave::kPermNone;
using enclave::kPermRead;
using enclave::kPermWrite;

class SharingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owen_ = &world_.AddMachine("owen");
    alice_ = &world_.AddMachine("alice");
    auto handle = owen_->nexus->CreateVolume(owen_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();
  }

  /// Runs the full Fig. 4 protocol: Alice publishes her identity, Owen
  /// grants, Alice extracts + mounts.
  void ShareWithAlice() {
    ASSERT_TRUE(alice_->nexus->PublishIdentity(alice_->user).ok());
    ASSERT_TRUE(owen_->nexus
                    ->GrantAccess(owen_->user, "alice", alice_->user.public_key())
                    .ok());
    auto handle = alice_->nexus->AcceptGrant(alice_->user, "owen",
                                             owen_->user.public_key(),
                                             handle_.volume_uuid);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    alice_handle_ = std::move(handle).value();
    ASSERT_TRUE(alice_->nexus
                    ->Mount(alice_->user, handle_.volume_uuid,
                            alice_handle_.sealed_rootkey)
                    .ok());
  }

  test::World world_;
  test::Machine* owen_ = nullptr;
  test::Machine* alice_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
  core::NexusClient::VolumeHandle alice_handle_;
};

// ---- authentication --------------------------------------------------------

TEST_F(SharingTest, MountRejectsWrongPrivateKey) {
  ASSERT_TRUE(owen_->nexus->Unmount().ok());
  // Mallory holds Owen's *sealed rootkey* (it lives on Owen's disk) but not
  // his private key. Challenge-response must fail on the signature.
  const core::UserKey mallory = core::UserKey::Generate("mallory", world_.rng());
  core::UserKey fake_owen{"owen", mallory.key}; // wrong key, right name
  const Status s = owen_->nexus->Mount(fake_owen, handle_.volume_uuid,
                                       handle_.sealed_rootkey);
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(owen_->nexus->mounted());
}

TEST_F(SharingTest, MountRejectsUnknownUserKey) {
  ASSERT_TRUE(owen_->nexus->Unmount().ok());
  // A self-consistent signature from a key that is not in the supernode.
  const core::UserKey stranger = core::UserKey::Generate("stranger", world_.rng());
  const Status s = owen_->nexus->Mount(stranger, handle_.volume_uuid,
                                       handle_.sealed_rootkey);
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, SealedRootkeyUselessOnAnotherMachine) {
  // Copying Owen's sealed rootkey to Alice's machine must not mount.
  const Status s = alice_->nexus->Mount(alice_->user, handle_.volume_uuid,
                                        handle_.sealed_rootkey);
  EXPECT_FALSE(s.ok());
}

// ---- key exchange -----------------------------------------------------------

TEST_F(SharingTest, FullExchangeGrantsAccess) {
  ASSERT_TRUE(owen_->nexus->WriteFile("shared.txt", Bytes{1, 2, 3}).ok());
  ShareWithAlice();
  // Volume access alone is not enough (default deny): grant ACLs too.
  ASSERT_TRUE(owen_->nexus
                  ->SetAcl("", "alice",
                           enclave::kPermRead | enclave::kPermWrite)
                  .ok());
  EXPECT_EQ(alice_->nexus->ReadFile("shared.txt").value(), (Bytes{1, 2, 3}));

  // And Alice can write; Owen sees it (single shared server).
  ASSERT_TRUE(alice_->nexus->WriteFile("from-alice.txt", Bytes{9}).ok());
  EXPECT_EQ(owen_->nexus->ReadFile("from-alice.txt").value(), Bytes{9});
}

TEST_F(SharingTest, GrantRejectsForgedIdentitySignature) {
  ASSERT_TRUE(alice_->nexus->PublishIdentity(alice_->user).ok());
  // Owen was given the wrong public key for Alice (MITM on the out-of-band
  // channel): the identity signature check must fail.
  const core::UserKey mallory = core::UserKey::Generate("mallory", world_.rng());
  const Status s =
      owen_->nexus->GrantAccess(owen_->user, "alice", mallory.public_key());
  EXPECT_FALSE(s.ok());
}

TEST_F(SharingTest, GrantRejectsQuoteFromWrongEnclave) {
  // Mallory runs a *different* (malicious) enclave on a genuine CPU and
  // publishes its identity under her own signature. The measurement check
  // must reject the grant even though the quote chain is genuine.
  auto mallory_cpu = world_.intel().ProvisionCpu(AsBytes("mallory-cpu"));
  const sgx::EnclaveImage evil("exfiltrator", 1, "evil-build");
  sgx::EnclaveRuntime evil_rt(*mallory_cpu, evil, AsBytes("evil"));
  const core::UserKey mallory = core::UserKey::Generate("mallory", world_.rng());

  // Build an identity blob the way NEXUS would, but quoting the evil image.
  ByteArray<32> evil_priv = crypto::X25519ClampScalar(world_.rng().Array<32>());
  const ByteArray<32> evil_pub = crypto::X25519BasePoint(evil_priv);
  ByteArray<sgx::kReportDataSize> report{};
  std::copy(evil_pub.begin(), evil_pub.end(), report.begin());
  const sgx::Quote quote = evil_rt.CreateQuote(report);
  Writer w;
  w.Var(quote.Serialize());
  w.Raw(evil_pub);
  const Bytes identity = std::move(w).Take();
  const auto sig = mallory.Sign(identity);
  ASSERT_TRUE(owen_->afs->Store("keyx/mallory.id", Concat([&] {
                Writer f;
                f.Var(identity);
                f.Raw(sig);
                return f.bytes();
              }())).ok());

  const Status s =
      owen_->nexus->GrantAccess(owen_->user, "mallory", mallory.public_key());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kIntegrityViolation);
}

TEST_F(SharingTest, GrantForAliceUselessToEve) {
  // Eve (another NEXUS machine) steals Alice's grant file. Her enclave has
  // a different ECDH key, so extraction must fail.
  ASSERT_TRUE(alice_->nexus->PublishIdentity(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccess(owen_->user, "alice", alice_->user.public_key())
                  .ok());
  auto& eve = world_.AddMachine("eve");
  // Eve reads the grant addressed to Alice by impersonating the file path.
  auto grant_file = eve.afs->Fetch("keyx/owen~alice.grant");
  ASSERT_TRUE(grant_file.ok());
  core::UserKey eve_as_alice{"alice", eve.user.key};
  auto r = eve.nexus->AcceptGrant(eve_as_alice, "owen", owen_->user.public_key(),
                                  handle_.volume_uuid);
  EXPECT_FALSE(r.ok());
}

TEST_F(SharingTest, IdentityKeySurvivesEnclaveRestart) {
  // Alice publishes, seals her ECDH identity, restarts her enclave, loads
  // the sealed identity, and can still extract a grant created in between.
  ASSERT_TRUE(alice_->nexus->PublishIdentity(alice_->user).ok());
  auto sealed_id = alice_->nexus->enclave().EcallSealIdentityKey();
  ASSERT_TRUE(sealed_id.ok());

  ASSERT_TRUE(owen_->nexus
                  ->GrantAccess(owen_->user, "alice", alice_->user.public_key())
                  .ok());

  core::NexusClient fresh(*alice_->runtime, *alice_->afs,
                          world_.intel().root_public_key());
  ASSERT_TRUE(fresh.enclave().EcallLoadIdentityKey(*sealed_id).ok());
  auto handle = fresh.AcceptGrant(alice_->user, "owen", owen_->user.public_key(),
                                  handle_.volume_uuid);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(
      fresh.Mount(alice_->user, handle_.volume_uuid, handle->sealed_rootkey).ok());
}

// ---- ACLs ----------------------------------------------------------------------

TEST_F(SharingTest, DefaultDenyForNonOwners) {
  ASSERT_TRUE(owen_->nexus->Mkdir("private").ok());
  ASSERT_TRUE(owen_->nexus->WriteFile("private/s.txt", Bytes{1}).ok());
  ShareWithAlice();
  // Alice is an authorized *volume* user but has no ACL entry: deny.
  const auto r = alice_->nexus->ReadFile("private/s.txt");
  EXPECT_EQ(r.status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->nexus->ListDir("private").status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, ReadOnlyAclAllowsReadDeniesWrite) {
  ASSERT_TRUE(owen_->nexus->Mkdir("docs").ok());
  ASSERT_TRUE(owen_->nexus->WriteFile("docs/f", Bytes{1}).ok());
  ShareWithAlice();
  // Reading a subdirectory requires traversal rights on every level (§IV-A).
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead).ok());
  ASSERT_TRUE(owen_->nexus->SetAcl("docs", "alice", kPermRead).ok());

  EXPECT_EQ(alice_->nexus->ReadFile("docs/f").value(), Bytes{1});
  EXPECT_EQ(alice_->nexus->WriteFile("docs/f", Bytes{2}).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->nexus->Touch("docs/new").code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->nexus->Remove("docs/f").code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, WriteAclAllowsMutation) {
  ASSERT_TRUE(owen_->nexus->Mkdir("shared").ok());
  ShareWithAlice();
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead).ok());
  ASSERT_TRUE(owen_->nexus->SetAcl("shared", "alice", kPermRead | kPermWrite).ok());

  EXPECT_TRUE(alice_->nexus->WriteFile("shared/a", Bytes{1}).ok());
  EXPECT_TRUE(alice_->nexus->Rename("shared/a", "shared/b").ok());
  EXPECT_TRUE(alice_->nexus->Remove("shared/b").ok());
}

TEST_F(SharingTest, AclRevocationTakesEffect) {
  ASSERT_TRUE(owen_->nexus->Mkdir("docs").ok());
  ASSERT_TRUE(owen_->nexus->WriteFile("docs/f", Bytes{1}).ok());
  ShareWithAlice();
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead).ok());
  ASSERT_TRUE(owen_->nexus->SetAcl("docs", "alice", kPermRead).ok());
  ASSERT_TRUE(alice_->nexus->ReadFile("docs/f").ok());

  // Revocation: one metadata update, no file re-encryption (§IV-C).
  ASSERT_TRUE(owen_->nexus->SetAcl("docs", "alice", kPermNone).ok());
  EXPECT_EQ(alice_->nexus->ReadFile("docs/f").status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, NonOwnerCannotAdministrate) {
  ShareWithAlice();
  const core::UserKey bob = core::UserKey::Generate("bob", world_.rng());
  EXPECT_EQ(alice_->nexus->AddUser("bob", bob.public_key()).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->nexus->RemoveUser("owen").code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->nexus->SetAcl("", "alice", kPermRead | kPermWrite).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, UserRevocationBlocksRemount) {
  ShareWithAlice();
  ASSERT_TRUE(alice_->nexus->Unmount().ok());
  ASSERT_TRUE(owen_->nexus->RemoveUser("alice").ok());
  // Alice still has her sealed rootkey, but the supernode no longer lists
  // her key: the mount must be denied (§VI-B).
  const Status s = alice_->nexus->Mount(alice_->user, handle_.volume_uuid,
                                        alice_handle_.sealed_rootkey);
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
}

TEST_F(SharingTest, UserRevocationEndsLiveSession) {
  ShareWithAlice();
  ASSERT_TRUE(owen_->nexus->Mkdir("d").ok());
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead).ok());
  ASSERT_TRUE(owen_->nexus->RemoveUser("alice").ok());
  // Alice's next supernode refresh notices the revocation and unmounts.
  auto r = alice_->nexus->ListUsers();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(alice_->nexus->mounted());
}

TEST_F(SharingTest, OwnerIsImmutable) {
  EXPECT_FALSE(owen_->nexus->RemoveUser("owen").ok());
}

TEST_F(SharingTest, ListUsersShowsTable) {
  ShareWithAlice();
  const auto users = owen_->nexus->ListUsers().value();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].name, "owen");
  EXPECT_EQ(users[0].id, enclave::kOwnerUserId);
  EXPECT_EQ(users[1].name, "alice");
}

// ---- concurrent multi-client behaviour ---------------------------------------

TEST_F(SharingTest, TwoClientsSeeEachOthersMetadataUpdates) {
  ShareWithAlice();
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead | kPermWrite).ok());

  // Interleaved creates in the same directory: the flock + reload-under-
  // lock discipline must keep the dirnode consistent.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(owen_->nexus->Touch("o-" + std::to_string(i)).ok()) << i;
    ASSERT_TRUE(alice_->nexus->Touch("a-" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(owen_->nexus->ListDir("").value().size(), 20u);
  EXPECT_EQ(alice_->nexus->ListDir("").value().size(), 20u);
}

TEST_F(SharingTest, LockContentionSurfacesAsConflict) {
  ShareWithAlice();
  ASSERT_TRUE(owen_->nexus->SetAcl("", "alice", kPermRead | kPermWrite).ok());
  // Owen's client holds the root dirnode lock (simulating a stalled update).
  const auto root_attrs = owen_->nexus->Lookup("").value();
  ASSERT_TRUE(owen_->afs->Lock("nx/" + root_attrs.uuid.ToString()).ok());
  EXPECT_EQ(alice_->nexus->Touch("contended").code(), ErrorCode::kConflict);
  ASSERT_TRUE(owen_->afs->Unlock("nx/" + root_attrs.uuid.ToString()).ok());
  EXPECT_TRUE(alice_->nexus->Touch("contended").ok());
}

} // namespace
} // namespace nexus
