// Multi-client cache coherence over wire-v4 leases, against a live
// loopback nexusd: invalidation pushes give open-to-close consistency
// between two CachedBackend clients, a v3 peer falls back to
// write-through + TTL, a dropped invalidation stays TTL-bounded because
// the server kills unresponsive sessions, and a two-client soak holds
// under TSan. Set NEXUS_REMOTE_ADDR=host:port to aim the soak at an
// external daemon instead of the in-process one (CI's two-client smoke).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cached_backend.hpp"
#include "common/bytes.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus {
namespace {

using cache::CacheOptions;
using cache::CachedBackend;
using net::NexusdOptions;
using net::NexusdServer;
using net::RemoteBackend;
using net::RemoteBackendOptions;

Bytes Blob(char fill, std::size_t n) {
  return Bytes(n, static_cast<std::uint8_t>(fill));
}

// A cached client over a RemoteBackend, keeping a raw handle to the
// backend for lease-session introspection.
struct Client {
  RemoteBackend* remote = nullptr;
  std::unique_ptr<CachedBackend> cache;
};

Client MakeClient(std::uint16_t port, CacheOptions cache_options = {},
                  RemoteBackendOptions options = {}) {
  auto remote = RemoteBackend::Connect("127.0.0.1", port, options);
  EXPECT_TRUE(remote.ok()) << remote.status().ToString();
  Client c;
  c.remote = remote.value().get();
  // Huge TTL by default: any freshness the tests observe is attributable
  // to leases and invalidations, never to TTL expiry.
  if (cache_options.ttl_ms == 0) cache_options.ttl_ms = 600000;
  c.cache = std::make_unique<CachedBackend>(std::move(remote).value(),
                                            cache_options);
  return c;
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// ---- lease invalidation -----------------------------------------------------

TEST(CacheCoherence, TwoClientInvalidationGivesOpenToCloseConsistency) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();
  Client writer = MakeClient(server->port());
  Client reader = MakeClient(server->port());
  ASSERT_TRUE(writer.cache->lease_mode());
  ASSERT_TRUE(reader.cache->lease_mode());

  // Writer publishes v1 ("close": Flush drains the writeback queue).
  ASSERT_TRUE(writer.cache->Put("obj", Blob('1', 128)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());

  // Reader "opens" the object: the Get takes a server lease.
  ASSERT_EQ(reader.cache->Get("obj").value(), Blob('1', 128));
  // Re-reads are local — no TTL could save us here (it is 10 minutes).
  const auto before = reader.cache->counters();
  ASSERT_EQ(reader.cache->Get("obj").value(), Blob('1', 128));
  EXPECT_EQ(reader.cache->counters().mem_hits, before.mem_hits + 1);

  // Writer publishes v2. The server must break the reader's lease before
  // the flush completes, so after the push lands the reader's next open
  // sees v2 — without ever waiting out a TTL.
  ASSERT_TRUE(writer.cache->Put("obj", Blob('2', 128)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());
  ASSERT_TRUE(WaitFor([&] {
    return reader.cache->counters().invalidations_received >= 1;
  }));
  EXPECT_EQ(reader.cache->Get("obj").value(), Blob('2', 128));

  // The writer's own session is never self-invalidated.
  EXPECT_EQ(writer.cache->counters().invalidations_received, 0u);

  const auto stats = server->stats();
  EXPECT_EQ(stats.lease_sessions, 2u);
  EXPECT_GE(stats.leases_granted, 1u);
  EXPECT_GE(stats.invalidations_sent, 1u);
  EXPECT_EQ(stats.lease_break_timeouts, 0u);

  writer.cache.reset(); // flush + drop lease channels before Stop
  reader.cache.reset();
  server->Stop();
}

TEST(CacheCoherence, DeleteInvalidatesRemoteHolders) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();
  Client writer = MakeClient(server->port());
  Client reader = MakeClient(server->port());

  ASSERT_TRUE(writer.cache->Put("doomed", Blob('d', 64)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());
  ASSERT_EQ(reader.cache->Get("doomed").value(), Blob('d', 64));

  ASSERT_TRUE(writer.cache->Delete("doomed").ok());
  ASSERT_TRUE(WaitFor([&] {
    return reader.cache->counters().invalidations_received >= 1;
  }));
  EXPECT_EQ(reader.cache->Get("doomed").status().code(), ErrorCode::kNotFound);

  writer.cache.reset();
  reader.cache.reset();
  server->Stop();
}

TEST(CacheCoherence, StreamCommitInvalidatesRemoteHolders) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();
  Client writer = MakeClient(server->port());
  Client reader = MakeClient(server->port());

  ASSERT_TRUE(writer.cache->Put("s", Blob('1', 64)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());
  ASSERT_EQ(reader.cache->Get("s").value(), Blob('1', 64));

  // Streamed replacement publishes atomically at Commit; the commit runs
  // the same lease-break protocol as Put.
  auto stream = writer.cache->OpenPutStream("s");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()->Append(Blob('2', 32)).ok());
  ASSERT_TRUE(stream.value()->Append(Blob('2', 32)).ok());
  ASSERT_TRUE(stream.value()->Commit().ok());

  ASSERT_TRUE(WaitFor([&] {
    return reader.cache->counters().invalidations_received >= 1;
  }));
  EXPECT_EQ(reader.cache->Get("s").value(), Blob('2', 64));

  writer.cache.reset();
  reader.cache.reset();
  server->Stop();
}

// ---- v3 interop -------------------------------------------------------------

TEST(CacheCoherence, V3PeerFallsBackToWriteThroughAndTtl) {
  storage::MemBackend backend;
  NexusdOptions server_options;
  server_options.max_protocol_version = 3; // legacy daemon: no leases
  auto server = NexusdServer::Start(backend, server_options).value();

  CacheOptions cache_options;
  cache_options.ttl_ms = 100; // short: the only staleness bound left
  Client c = MakeClient(server->port(), cache_options);
  EXPECT_FALSE(c.cache->lease_mode());
  EXPECT_EQ(c.remote->lease_session(), 0u);

  // Write-through: the object reaches the server before Put returns.
  ASSERT_TRUE(c.cache->Put("obj", Blob('a', 64)).ok());
  EXPECT_EQ(backend.Get("obj").value(), Blob('a', 64));
  EXPECT_EQ(c.cache->dirty_bytes(), 0u);

  // Another writer mutates behind our back (no push can warn us).
  ASSERT_TRUE(backend.Put("obj", Blob('b', 64)).ok());
  // Inside the TTL the stale read is permitted...
  EXPECT_EQ(c.cache->Get("obj").value(), Blob('a', 64));
  // ...and past it the cache re-fetches: staleness is bounded by ttl_ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(c.cache->Get("obj").value(), Blob('b', 64));

  c.cache.reset();
  server->Stop();
}

// ---- fault: dropped invalidations -------------------------------------------

// Lease channel that swallows every server-pushed kInvalidate frame: the
// client never sees (or acks) the push, modeling a wedged callback path.
class BlackholeTransport final : public net::Transport {
 public:
  explicit BlackholeTransport(std::unique_ptr<net::TcpTransport> inner)
      : inner_(std::move(inner)) {}

  Status SendFrame(ByteSpan payload) override {
    return inner_->SendFrame(payload);
  }
  Result<Bytes> RecvFrame() override {
    for (;;) {
      auto frame = inner_->RecvFrame();
      if (!frame.ok()) return frame;
      Reader reader(frame.value());
      auto rpc = net::ParseRequestHead(reader);
      if (rpc.ok() && rpc.value() == net::Rpc::kInvalidate) continue; // eat it
      return frame;
    }
  }
  void Close() override { inner_->Close(); }
  void Shutdown() override { inner_->Shutdown(); }

 private:
  std::unique_ptr<net::TcpTransport> inner_;
};

TEST(CacheCoherence, DroppedInvalidationIsBoundedByTtlAfterSessionKill) {
  storage::MemBackend backend;
  NexusdOptions server_options;
  server_options.lease_break_ms = 100; // unresponsive holders die fast
  auto server = NexusdServer::Start(backend, server_options).value();

  RemoteBackendOptions reader_options;
  const std::uint16_t port = server->port();
  reader_options.lease_transport_factory =
      [port]() -> Result<std::unique_ptr<net::Transport>> {
    auto dialed = net::TcpTransport::Dial("127.0.0.1", port, 5000, -1);
    if (!dialed.ok()) return dialed.status();
    return std::unique_ptr<net::Transport>(
        new BlackholeTransport(std::move(dialed).value()));
  };
  CacheOptions reader_cache_options;
  reader_cache_options.ttl_ms = 200;
  Client reader = MakeClient(port, reader_cache_options, reader_options);
  Client writer = MakeClient(port);
  ASSERT_TRUE(reader.cache->lease_mode());

  ASSERT_TRUE(writer.cache->Put("obj", Blob('1', 64)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());
  ASSERT_EQ(reader.cache->Get("obj").value(), Blob('1', 64)); // leased

  // The push vanishes into the blackhole; the writer's flush still
  // completes within lease_break_ms because the server kills the
  // unresponsive session rather than wait forever.
  ASSERT_TRUE(writer.cache->Put("obj", Blob('2', 64)).ok());
  const auto flush_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(writer.cache->Flush().ok());
  const auto flush_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - flush_start)
                            .count();
  EXPECT_LT(flush_ms, 5000); // bounded, not a hang

  ASSERT_TRUE(WaitFor([&] { return server->stats().lease_break_timeouts >= 1; }));
  // Session death demotes the reader's leased entries to TTL-clean, so the
  // stale value survives AT MOST ttl_ms; after that the fresh value wins.
  ASSERT_TRUE(WaitFor([&] {
    auto got = reader.cache->Get("obj");
    return got.ok() && got.value() == Blob('2', 64);
  }, 3000));

  reader.cache.reset();
  writer.cache.reset();
  server->Stop();
}

// ---- two-client soak (run under TSan in CI) ---------------------------------

TEST(CacheCoherence, TwoClientOpenToCloseSoak) {
  // NEXUS_REMOTE_ADDR=host:port points the soak at an external nexusd
  // (CI's cross-process smoke); otherwise an in-process server is used.
  std::unique_ptr<NexusdServer> server;
  storage::MemBackend backend;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (const char* addr = std::getenv("NEXUS_REMOTE_ADDR");
      addr != nullptr && *addr != '\0') {
    const std::string spec(addr);
    const auto colon = spec.rfind(':');
    ASSERT_NE(colon, std::string::npos) << "NEXUS_REMOTE_ADDR=" << spec;
    host = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1));
  } else {
    server = NexusdServer::Start(backend).value();
    port = server->port();
  }

  auto connect = [&](CacheOptions cache_options) {
    auto remote = RemoteBackend::Connect(host, port);
    EXPECT_TRUE(remote.ok()) << remote.status().ToString();
    if (cache_options.ttl_ms == 0) cache_options.ttl_ms = 600000;
    return std::make_unique<CachedBackend>(std::move(remote).value(),
                                           cache_options);
  };
  auto a = connect({});
  auto b = connect({});
  ASSERT_TRUE(a->lease_mode());
  ASSERT_TRUE(b->lease_mode());

  // Each client alternates open-to-close sessions on a shared name set:
  // open = Get, mutate = Put, close = Flush. Values are self-describing
  // (fill byte = client id, length encodes the round) so any read must
  // observe SOME complete committed value — torn or fabricated bytes fail.
  constexpr int kRounds = 60;
  constexpr int kNames = 4;
  auto run = [&](CachedBackend& mine, char id) {
    for (int r = 0; r < kRounds; ++r) {
      const std::string name = "soak" + std::to_string(r % kNames);
      auto got = mine.Get(name);
      if (got.ok()) {
        ASSERT_FALSE(got.value().empty());
        const std::uint8_t fill = got.value()[0];
        ASSERT_TRUE(fill == 'A' || fill == 'B') << int{fill};
        ASSERT_EQ(got.value(),
                  Bytes(got.value().size(), fill)); // whole, never torn
      } else {
        ASSERT_EQ(got.status().code(), ErrorCode::kNotFound);
      }
      ASSERT_TRUE(mine.Put(name, Blob(id, 64 + (r % 16))).ok());
      if (r % 8 == 7) {
        ASSERT_TRUE(mine.Flush().ok());
      }
    }
    ASSERT_TRUE(mine.Flush().ok());
  };
  std::thread ta([&] { run(*a, 'A'); });
  std::thread tb([&] { run(*b, 'B'); });
  ta.join();
  tb.join();

  // After both closes, the clients converge: one of the two final writes
  // won last-writer-wins, and a fresh read agrees across clients.
  for (int n = 0; n < kNames; ++n) {
    const std::string name = "soak" + std::to_string(n);
    a->DropCleanEntries();
    b->DropCleanEntries();
    const auto va = a->Get(name);
    const auto vb = b->Get(name);
    ASSERT_TRUE(va.ok()) << va.status().ToString();
    ASSERT_TRUE(vb.ok()) << vb.status().ToString();
    EXPECT_EQ(va.value(), vb.value());
  }

  a.reset();
  b.reset();
  if (server) server->Stop();
}

// ---- wire v5: write leases --------------------------------------------------

// The raw protocol surface: PutLeased grants a write lease only to a
// client with a live lease session, and the grant registers the writer
// as holder — a LATER mutation by someone else invalidates it.
TEST(CacheCoherence, PutLeasedGrantsOnlyWithLeaseSession) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();

  auto loner = RemoteBackend::Connect("127.0.0.1", server->port()).value();
  bool granted = true;
  ASSERT_TRUE(loner->PutLeased("obj", Blob('x', 8), &granted).ok());
  EXPECT_FALSE(granted); // no session, no lease

  auto holder = RemoteBackend::Connect("127.0.0.1", server->port()).value();
  std::mutex mu;
  std::vector<std::string> invalidated;
  ASSERT_TRUE(holder->SubscribeInvalidations(
      [&](const std::vector<std::string>& names) {
        const std::lock_guard<std::mutex> lock(mu);
        invalidated.insert(invalidated.end(), names.begin(), names.end());
      },
      [] {}));
  ASSERT_TRUE(holder->PutLeased("obj", Blob('y', 8), &granted).ok());
  EXPECT_TRUE(granted); // subscribed writer gets a write lease

  // The writer's own next mutation does not self-invalidate...
  ASSERT_TRUE(holder->PutLeased("obj", Blob('z', 8), &granted).ok());
  EXPECT_TRUE(granted);
  {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(invalidated.empty());
  }
  // ...but another client's write breaks the holder's write lease.
  ASSERT_TRUE(loner->Put("obj", Blob('w', 8)).ok());
  ASSERT_TRUE(WaitFor([&] {
    const std::lock_guard<std::mutex> lock(mu);
    return !invalidated.empty();
  }));
  {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(invalidated.front(), "obj");
  }

  holder.reset();
  loner.reset();
  server->Stop();
}

// MultiGetLeased reports a per-entry grant flag: hits from a subscribed
// client come back leased, misses and unsubscribed clients do not.
TEST(CacheCoherence, MultiGetLeasedReportsPerEntryGrants) {
  storage::MemBackend backend;
  ASSERT_TRUE(backend.Put("a", Blob('a', 16)).ok());
  ASSERT_TRUE(backend.Put("b", Blob('b', 16)).ok());
  auto server = NexusdServer::Start(backend).value();

  auto client = RemoteBackend::Connect("127.0.0.1", server->port()).value();
  std::vector<bool> leased;
  auto results = client->MultiGetLeased({"a", "b", "missing"}, &leased);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(leased, (std::vector<bool>{false, false, false})); // no session

  ASSERT_TRUE(client->SubscribeInvalidations(
      [](const std::vector<std::string>&) {}, [] {}));
  results = client->MultiGetLeased({"a", "b", "missing"}, &leased);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].value(), Blob('a', 16));
  EXPECT_EQ(results[1].value(), Blob('b', 16));
  EXPECT_EQ(results[2].status().code(), ErrorCode::kNotFound);
  ASSERT_EQ(leased.size(), 3u);
  EXPECT_TRUE(leased[0]);
  EXPECT_TRUE(leased[1]);
  EXPECT_FALSE(leased[2]); // misses never grant

  client.reset();
  server->Stop();
}

// The cache-level payoff: after a write-through Put (or a flush), the
// writer HOLDS a write lease, so its own copy stays resident and
// re-reads are memory hits — no refetch, no TTL dependence.
TEST(CacheCoherence, WriteLeaseKeepsWriterCopyWarm) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();
  Client writer = MakeClient(server->port());
  Client other = MakeClient(server->port());
  ASSERT_TRUE(writer.cache->lease_mode());

  ASSERT_TRUE(writer.cache->Put("warm", Blob('1', 64)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());

  const auto before = writer.cache->counters();
  EXPECT_EQ(writer.cache->Get("warm").value(), Blob('1', 64));
  const auto after = writer.cache->counters();
  EXPECT_EQ(after.mem_hits, before.mem_hits + 1); // served locally
  EXPECT_EQ(after.misses, before.misses);

  // Another client's write still invalidates the writer's copy.
  ASSERT_TRUE(other.cache->Put("warm", Blob('2', 64)).ok());
  ASSERT_TRUE(other.cache->Flush().ok());
  ASSERT_TRUE(WaitFor([&] {
    return writer.cache->counters().invalidations_received >= 1;
  }));
  EXPECT_EQ(writer.cache->Get("warm").value(), Blob('2', 64));

  writer.cache.reset();
  other.cache.reset();
  server->Stop();
}

// Satellite: CachedBackend::MultiGet fills its miss set with ONE batched
// leased round — and the batch-granted leases are real: a later write by
// another client pushes an invalidation for a batch-fetched name.
TEST(CacheCoherence, MultiGetMissesFillInOneBatchedLeasedRound) {
  storage::MemBackend backend;
  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) {
    names.push_back("batch" + std::to_string(i));
    ASSERT_TRUE(backend.Put(names.back(), Blob('a' + i, 32)).ok());
  }
  auto server = NexusdServer::Start(backend).value();
  Client reader = MakeClient(server->port());
  Client writer = MakeClient(server->port());
  ASSERT_TRUE(reader.cache->lease_mode());

  const auto net_before = reader.remote->counters();
  const auto results = reader.cache->MultiGet(names);
  ASSERT_EQ(results.size(), names.size());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(results[i].value(), Blob('a' + i, 32)) << i;
  }
  // The whole miss set travelled as one kMultiGet exchange.
  EXPECT_EQ(reader.remote->counters().rpcs, net_before.rpcs + 1);

  // Batch-installed entries are leased, so re-reads stay local...
  const auto cache_before = reader.cache->counters();
  for (const std::string& name : names) {
    EXPECT_EQ(reader.cache->Get(name).value(),
              Blob('a' + (name.back() - '0'), 32));
  }
  EXPECT_EQ(reader.cache->counters().mem_hits,
            cache_before.mem_hits + names.size());

  // ...and the server really registered the leases: a foreign write to a
  // batch-fetched name pushes an invalidation.
  ASSERT_TRUE(writer.cache->Put("batch3", Blob('Z', 32)).ok());
  ASSERT_TRUE(writer.cache->Flush().ok());
  ASSERT_TRUE(WaitFor([&] {
    return reader.cache->counters().invalidations_received >= 1;
  }));
  EXPECT_EQ(reader.cache->Get("batch3").value(), Blob('Z', 32));

  reader.cache.reset();
  writer.cache.reset();
  server->Stop();
}

} // namespace
} // namespace nexus
