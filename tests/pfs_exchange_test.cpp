// The synchronous mutual-attestation exchange (§VI-B): both parties
// online, fresh quoted ephemeral keys per exchange, forward secrecy.
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "crypto/x25519.hpp"
#include "test_env.hpp"

namespace nexus {
namespace {

class PfsExchangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owen_ = &world_.AddMachine("owen");
    alice_ = &world_.AddMachine("alice");
    auto handle = owen_->nexus->CreateVolume(owen_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();
  }

  test::World world_;
  test::Machine* owen_ = nullptr;
  test::Machine* alice_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(PfsExchangeTest, FullExchangeGrantsAccess) {
  ASSERT_TRUE(owen_->nexus->WriteFile("f", Bytes{1, 2}).ok());

  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccessEphemeral(owen_->user, "alice",
                                         alice_->user.public_key())
                  .ok());
  auto handle = alice_->nexus->AcceptEphemeralGrant(
      alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  ASSERT_TRUE(alice_->nexus
                  ->Mount(alice_->user, handle_.volume_uuid, handle->sealed_rootkey)
                  .ok());
  ASSERT_TRUE(owen_->nexus
                  ->SetAcl("", "alice", enclave::kPermRead)
                  .ok());
  EXPECT_EQ(alice_->nexus->ReadFile("f").value(), (Bytes{1, 2}));
}

TEST_F(PfsExchangeTest, OfferIsOneShot) {
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccessEphemeral(owen_->user, "alice",
                                         alice_->user.public_key())
                  .ok());
  auto first = alice_->nexus->AcceptEphemeralGrant(
      alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
  ASSERT_TRUE(first.ok());
  // The ephemeral private key was destroyed on accept: replaying the same
  // grant file yields nothing.
  auto replay = alice_->nexus->AcceptEphemeralGrant(
      alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
  EXPECT_FALSE(replay.ok());
}

TEST_F(PfsExchangeTest, FreshOfferInvalidatesOldGrant) {
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccessEphemeral(owen_->user, "alice",
                                         alice_->user.public_key())
                  .ok());
  // Alice publishes a NEW offer before accepting: the pending key rotated,
  // so the old grant (addressed to the previous ephemeral key) is dead.
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  auto stale = alice_->nexus->AcceptEphemeralGrant(
      alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(PfsExchangeTest, GrantRejectsForgedOfferSignature) {
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  const core::UserKey mallory = core::UserKey::Generate("mallory", world_.rng());
  EXPECT_FALSE(owen_->nexus
                   ->GrantAccessEphemeral(owen_->user, "alice",
                                          mallory.public_key())
                   .ok());
}

TEST_F(PfsExchangeTest, GrantRejectsOfferFromWrongEnclave) {
  // An offer quoting a non-NEXUS enclave on a genuine CPU must fail the
  // measurement check inside EcallEphemeralGrant.
  auto cpu = world_.intel().ProvisionCpu(AsBytes("evil-cpu"));
  const sgx::EnclaveImage evil("evil", 1, "x");
  sgx::EnclaveRuntime evil_rt(*cpu, evil, AsBytes("evil"));

  ByteArray<32> eph_priv = crypto::X25519ClampScalar(world_.rng().Array<32>());
  const ByteArray<32> eph_pub = crypto::X25519BasePoint(eph_priv);
  ByteArray<sgx::kReportDataSize> report{};
  std::copy(eph_pub.begin(), eph_pub.end(), report.begin());
  const sgx::Quote quote = evil_rt.CreateQuote(report);

  Writer w;
  w.Var(quote.Serialize());
  w.Raw(eph_pub);
  const Bytes offer = std::move(w).Take();
  const core::UserKey mallory = core::UserKey::Generate("mallory", world_.rng());
  const auto sig = mallory.Sign(offer);
  Writer file;
  file.Var(offer);
  file.Raw(sig);
  ASSERT_TRUE(owen_->afs->Store("keyx/mallory.offer", file.bytes()).ok());

  const Status s = owen_->nexus->GrantAccessEphemeral(owen_->user, "mallory",
                                                      mallory.public_key());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kIntegrityViolation);
}

TEST_F(PfsExchangeTest, AcceptRejectsTamperedGrant) {
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccessEphemeral(owen_->user, "alice",
                                         alice_->user.public_key())
                  .ok());
  // Server flips a byte in the published grant file.
  const std::string path = "keyx/owen~alice.pfs-grant";
  Bytes blob = world_.server().AdversaryRead(path).value();
  blob[blob.size() / 2] ^= 1;
  ASSERT_TRUE(world_.server().AdversaryWrite(path, blob).ok());
  alice_->afs->FlushCache();

  auto r = alice_->nexus->AcceptEphemeralGrant(
      alice_->user, "owen", owen_->user.public_key(), handle_.volume_uuid);
  EXPECT_FALSE(r.ok());
}

TEST_F(PfsExchangeTest, GrantsUselessToThirdParty) {
  ASSERT_TRUE(alice_->nexus->PublishEphemeralOffer(alice_->user).ok());
  ASSERT_TRUE(owen_->nexus
                  ->GrantAccessEphemeral(owen_->user, "alice",
                                         alice_->user.public_key())
                  .ok());
  // Eve steals the grant file; her enclave never held Alice's ephemeral
  // private key.
  auto& eve = world_.AddMachine("eve");
  ASSERT_TRUE(eve.nexus->PublishEphemeralOffer(eve.user).ok()); // own pending key
  core::UserKey eve_as_alice{"alice", eve.user.key};
  auto r = eve.nexus->AcceptEphemeralGrant(
      eve_as_alice, "owen", owen_->user.public_key(), handle_.volume_uuid);
  EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace nexus
