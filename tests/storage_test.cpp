// Storage substrate tests: backend contract (parameterized over Mem/Disk,
// plus a live RemoteBackend when NEXUS_REMOTE_ADDR points at a nexusd),
// AFS caching semantics, locking, cost accounting and the adversary API.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "net/remote_backend.hpp"
#include "storage/afs.hpp"
#include "storage/backend.hpp"

namespace nexus::storage {
namespace {

// ---- backend contract, parameterized over implementations -------------------

enum class BackendKind { kMem, kDisk, kRemote };

/// Mem and Disk always run; Remote joins when NEXUS_REMOTE_ADDR=host:port
/// names a live nexusd (the CI loopback smoke step sets it).
std::vector<BackendKind> BackendsUnderTest() {
  std::vector<BackendKind> kinds = {BackendKind::kMem, BackendKind::kDisk};
  if (std::getenv("NEXUS_REMOTE_ADDR") != nullptr) {
    kinds.push_back(BackendKind::kRemote);
  }
  return kinds;
}

class BackendContractTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case BackendKind::kMem:
        backend_ = std::make_unique<MemBackend>();
        break;
      case BackendKind::kDisk:
        dir_ = std::filesystem::temp_directory_path() /
               ("nexus-test-" + std::to_string(::getpid()) + "-" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        backend_ = std::make_unique<DiskBackend>(
            DiskBackend::Open(dir_.string()).value());
        break;
      case BackendKind::kRemote: {
        const std::string addr = std::getenv("NEXUS_REMOTE_ADDR");
        const auto colon = addr.rfind(':');
        ASSERT_NE(colon, std::string::npos) << "NEXUS_REMOTE_ADDR=" << addr;
        auto remote = net::RemoteBackend::Connect(
            addr.substr(0, colon),
            static_cast<std::uint16_t>(std::stoi(addr.substr(colon + 1))));
        ASSERT_TRUE(remote.ok()) << remote.status().ToString();
        backend_ = std::move(remote).value();
        // The daemon's store outlives individual tests: start each from a
        // clean namespace.
        for (const auto& name : backend_->List("")) {
          ASSERT_TRUE(backend_->Delete(name).ok()) << name;
        }
        break;
      }
    }
  }
  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<StorageBackend> backend_;
  std::filesystem::path dir_;
};

TEST_P(BackendContractTest, PutGetRoundTrip) {
  const Bytes data = {1, 2, 3, 0, 255};
  ASSERT_TRUE(backend_->Put("obj", data).ok());
  EXPECT_EQ(backend_->Get("obj").value(), data);
}

TEST_P(BackendContractTest, GetMissingFails) {
  auto r = backend_->Get("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_P(BackendContractTest, OverwriteReplaces) {
  ASSERT_TRUE(backend_->Put("obj", Bytes{1}).ok());
  ASSERT_TRUE(backend_->Put("obj", Bytes{2, 3}).ok());
  EXPECT_EQ(backend_->Get("obj").value(), (Bytes{2, 3}));
}

TEST_P(BackendContractTest, DeleteRemoves) {
  ASSERT_TRUE(backend_->Put("obj", Bytes{1}).ok());
  EXPECT_TRUE(backend_->Exists("obj"));
  ASSERT_TRUE(backend_->Delete("obj").ok());
  EXPECT_FALSE(backend_->Exists("obj"));
  EXPECT_FALSE(backend_->Delete("obj").ok());
}

TEST_P(BackendContractTest, EmptyObjectAllowed) {
  ASSERT_TRUE(backend_->Put("empty", {}).ok());
  EXPECT_TRUE(backend_->Exists("empty"));
  EXPECT_TRUE(backend_->Get("empty").value().empty());
}

TEST_P(BackendContractTest, ListByPrefixSorted) {
  ASSERT_TRUE(backend_->Put("nx/b", Bytes{1}).ok());
  ASSERT_TRUE(backend_->Put("nx/a", Bytes{1}).ok());
  ASSERT_TRUE(backend_->Put("other/c", Bytes{1}).ok());
  const auto names = backend_->List("nx/");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "nx/a");
  EXPECT_EQ(names[1], "nx/b");
}

TEST_P(BackendContractTest, AwkwardNamesSurvive) {
  for (const std::string name :
       {"with/slash", "with space", "uni\xc3\xa9", "%percent", "..dots"}) {
    ASSERT_TRUE(backend_->Put(name, Bytes{7}).ok()) << name;
    EXPECT_EQ(backend_->Get(name).value(), Bytes{7}) << name;
  }
}

// Regression pin for the name-unescaping bound: an escaped character at
// the very END of a name ("nx/" escapes to "nx%2f") must survive the
// Put → List round trip. The decode bound is i + 3 <= size, which admits
// a trailing %XX — this test keeps it that way.
TEST_P(BackendContractTest, TrailingEscapedCharacterRoundTrips) {
  for (const std::string name : {"nx/", "trailing%", "q?", "a/b/"}) {
    ASSERT_TRUE(backend_->Put(name, Bytes{9}).ok()) << name;
    EXPECT_EQ(backend_->Get(name).value(), Bytes{9}) << name;
    const auto listed = backend_->List(name);
    ASSERT_EQ(listed.size(), 1u) << name;
    EXPECT_EQ(listed[0], name);
  }
}

// Names containing a literal '%' round-trip: escaping re-encodes the '%'
// itself, so unescaping can never misread it as the start of an escape.
TEST_P(BackendContractTest, MalformedEscapesListVerbatim) {
  for (const std::string name : {"100%", "50%off", "a%zz"}) {
    ASSERT_TRUE(backend_->Put(name, Bytes{3}).ok()) << name;
    const auto listed = backend_->List(name);
    ASSERT_EQ(listed.size(), 1u) << name;
    EXPECT_EQ(listed[0], name);
  }
}

// A PutStream is single-shot: after Commit or Abort the stream is dead and
// every further call fails kInvalidArgument instead of silently writing.
TEST_P(BackendContractTest, StreamDeadAfterCommit) {
  auto stream = backend_->OpenPutStream("s").value();
  ASSERT_TRUE(stream->Append(Bytes(10, 1)).ok());
  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(stream->Append(Bytes{2}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(stream->Commit().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(backend_->Get("s").value(), Bytes(10, 1)); // unchanged
}

TEST_P(BackendContractTest, StreamDeadAfterAbort) {
  auto stream = backend_->OpenPutStream("s").value();
  ASSERT_TRUE(stream->Append(Bytes(10, 1)).ok());
  stream->Abort();
  EXPECT_EQ(stream->Append(Bytes{2}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(stream->Commit().code(), ErrorCode::kInvalidArgument);
  stream->Abort(); // double abort is harmless
  EXPECT_FALSE(backend_->Exists("s"));
}

// Whole-object calls are thread-safe per the StorageBackend contract; in
// particular concurrent same-name writers must serialize to one winner's
// complete content, never interleave.
TEST_P(BackendContractTest, ConcurrentSameNameWritersLeaveOneWinner) {
  constexpr int kWriters = 4;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([this, w] {
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(
            backend_->Put("contended", Bytes(512, static_cast<std::uint8_t>(w)))
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const Bytes final = backend_->Get("contended").value();
  ASSERT_EQ(final.size(), 512u);
  for (const auto byte : final) EXPECT_EQ(byte, final[0]); // no interleaving
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         ::testing::ValuesIn(BackendsUnderTest()),
                         [](const auto& info) {
                           switch (info.param) {
                             case BackendKind::kMem: return "Mem";
                             case BackendKind::kDisk: return "Disk";
                             case BackendKind::kRemote: return "Remote";
                           }
                           return "Unknown";
                         });

// ---- DiskBackend name escaping ----------------------------------------------

TEST(DiskNameEscaping, RoundTripsTrickyNames) {
  for (const std::string name :
       {"plain", "a/b/c", "100%", "%", "%%", "trailing%2f", "%2f", "a%zz",
        "uni\xc3\xa9\xe2\x82\xac", "with space", "..", ".", "?q=1&r=2"}) {
    const std::string escaped = EscapeName(name);
    EXPECT_EQ(UnescapeName(escaped), name) << name << " via " << escaped;
    // Escaped form is a safe flat filename: no separators, no traversal.
    EXPECT_EQ(escaped.find('/'), std::string::npos) << escaped;
    EXPECT_NE(escaped, "..") << name;
  }
}

TEST(DiskNameEscaping, EscapingIsInjectiveOnCollidingInputs) {
  // Pairs that would collide if '%' were not itself escaped.
  EXPECT_NE(EscapeName("a/b"), EscapeName("a%2fb"));
  EXPECT_NE(EscapeName("100%"), EscapeName("100%25"));
  EXPECT_NE(EscapeName("nx/"), EscapeName("nx%2f"));
}

TEST(DiskNameEscaping, ListPrefixMatchesLogicalNamesAcrossEscapedBoundaries) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("nexus-escape-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    DiskBackend backend = DiskBackend::Open(dir.string()).value();
    // "a/" and "a%" escape to different leaders ("a%2f" vs "a%25"): prefix
    // filtering happens on LOGICAL names, so "a/" must match only the
    // slash family even though both share the escaped prefix "a%2".
    for (const std::string name :
         {"a/x", "a/y", "a%x", "a%2fz", "ab", "a"}) {
      ASSERT_TRUE(backend.Put(name, Bytes{1}).ok()) << name;
    }
    const auto slash_family = backend.List("a/");
    ASSERT_EQ(slash_family.size(), 2u);
    EXPECT_EQ(slash_family[0], "a/x");
    EXPECT_EQ(slash_family[1], "a/y");

    const auto percent_family = backend.List("a%");
    ASSERT_EQ(percent_family.size(), 2u);
    EXPECT_EQ(percent_family[0], "a%2fz");
    EXPECT_EQ(percent_family[1], "a%x");

    EXPECT_EQ(backend.List("a").size(), 6u);
    EXPECT_EQ(backend.List("").size(), 6u);
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskNameEscaping, ListSkipsForeignAndTemporaryFiles) {
  // The store directory is shared territory: crashed Puts leave temp
  // files, the cache's disk tier keeps dot-prefixed metadata beside a
  // disk-backed store, and operators drop stray files in by hand. List
  // must report exactly the canonical objects and nothing else.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("nexus-foreign-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    DiskBackend backend = DiskBackend::Open(dir.string()).value();
    ASSERT_TRUE(backend.Put("keep/me", Bytes{1}).ok());
    ASSERT_TRUE(backend.Put("keep2", Bytes{2}).ok());

    // Foreign droppings: a subdirectory, hidden metadata, an in-flight
    // temp file, a file with an invalid escape sequence, and a file whose
    // characters a writer would have escaped (non-canonical spelling).
    std::filesystem::create_directory(dir / "subdir");
    for (const std::string foreign :
         {".cache-index", ".%tmp-123", "bad%zq", "not%2Gescaped"}) {
      std::ofstream(dir / foreign) << "junk";
    }
    std::ofstream(dir / "subdir" / "nested") << "junk";

    const auto names = backend.List("");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "keep/me");
    EXPECT_EQ(names[1], "keep2");
  }
  std::filesystem::remove_all(dir);
}

// ---- DiskBackend atomic Put -------------------------------------------------

class DiskBackendAtomicityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nexus-atomic-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    backend_ = std::make_unique<DiskBackend>(
        DiskBackend::Open(dir_.string()).value());
  }
  void TearDown() override {
    backend_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::size_t TempFileCount() const {
    std::size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().filename().string().starts_with(".%tmp-")) ++n;
    }
    return n;
  }

  std::unique_ptr<DiskBackend> backend_;
  std::filesystem::path dir_;
};

// Put goes through a same-directory temp file + rename; a completed Put
// must leave no temp behind (a leftover would mean the visible object
// could have been a torn direct write).
TEST_F(DiskBackendAtomicityTest, PutLeavesNoTempFiles) {
  ASSERT_TRUE(backend_->Put("nx/a", Bytes(100, 1)).ok());
  ASSERT_TRUE(backend_->Put("nx/a", Bytes(5000, 2)).ok()); // overwrite
  EXPECT_EQ(TempFileCount(), 0u);
  EXPECT_EQ(backend_->Get("nx/a").value(), Bytes(5000, 2));
}

// A temp file orphaned by a host crash mid-Put is invisible to the object
// namespace: List skips it, and it shadows nothing.
TEST_F(DiskBackendAtomicityTest, LeftoverTempFilesAreInvisible) {
  ASSERT_TRUE(backend_->Put("nx/real", Bytes{1}).ok());
  {
    std::ofstream junk(dir_ / ".%tmp-nx%2fghost", std::ios::binary);
    junk << "torn write";
  }
  const auto names = backend_->List("nx/");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "nx/real");
  EXPECT_FALSE(backend_->Exists("nx/ghost"));
  EXPECT_FALSE(backend_->Get("nx/ghost").ok());
}

// A streamed Put buffers in the same-directory temp file: nothing is
// visible mid-stream, the object appears atomically at Commit, and the
// temp is gone afterwards.
TEST_F(DiskBackendAtomicityTest, PutStreamInvisibleUntilCommit) {
  auto stream = backend_->OpenPutStream("nx/s").value();
  ASSERT_TRUE(stream->Append(Bytes(4096, 0x11)).ok());
  ASSERT_TRUE(stream->Append(Bytes(100, 0x22)).ok());
  EXPECT_FALSE(backend_->Exists("nx/s")); // mid-stream: not an object yet
  EXPECT_EQ(TempFileCount(), 1u);

  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(TempFileCount(), 0u);
  Bytes want(4096, 0x11);
  want.insert(want.end(), 100, 0x22);
  EXPECT_EQ(backend_->Get("nx/s").value(), want);
}

// Abort (and destruction without Commit) must leave neither the object
// nor the temp file behind — including when it would have overwritten.
TEST_F(DiskBackendAtomicityTest, PutStreamAbortLeavesOldContent) {
  ASSERT_TRUE(backend_->Put("nx/s", Bytes{7}).ok());
  {
    auto stream = backend_->OpenPutStream("nx/s").value();
    ASSERT_TRUE(stream->Append(Bytes(1000, 0xEE)).ok());
    stream->Abort();
  }
  {
    auto dropped = backend_->OpenPutStream("nx/s").value();
    ASSERT_TRUE(dropped->Append(Bytes(10, 0xDD)).ok());
    // Destructor without Commit == Abort.
  }
  EXPECT_EQ(TempFileCount(), 0u);
  EXPECT_EQ(backend_->Get("nx/s").value(), Bytes{7});
}

// ---- AFS semantics ------------------------------------------------------------

class AfsTest : public ::testing::Test {
 protected:
  SimClock clock_;
  AfsServer server_{std::make_unique<MemBackend>(), clock_};
  AfsClient alice_{server_, "alice"};
  AfsClient bob_{server_, "bob"};
};

TEST_F(AfsTest, StoreFetchRoundTrip) {
  const Bytes data(1000, 0xab);
  ASSERT_TRUE(alice_.Store("f", data).ok());
  EXPECT_EQ(bob_.Fetch("f").value(), data);
}

TEST_F(AfsTest, FetchMissingFails) {
  EXPECT_EQ(alice_.Fetch("nope").status().code(), ErrorCode::kNotFound);
}

TEST_F(AfsTest, CacheHitIsFree) {
  ASSERT_TRUE(alice_.Store("f", Bytes(1 << 20, 1)).ok());
  ASSERT_TRUE(alice_.Fetch("f").ok()); // warm (own store already cached it)
  const double t0 = clock_.Now();
  ASSERT_TRUE(alice_.Fetch("f").ok());
  EXPECT_EQ(clock_.Now(), t0); // zero cost: callback held
  EXPECT_GT(alice_.stats().cache_hits, 0u);
}

TEST_F(AfsTest, RemoteWriteInvalidatesCallback) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(bob_.Fetch("f").ok());
  // Alice updates; Bob's cached copy must be refetched.
  ASSERT_TRUE(alice_.Store("f", Bytes{2}).ok());
  const auto before = bob_.stats().fetches;
  EXPECT_EQ(bob_.Fetch("f").value(), Bytes{2});
  EXPECT_EQ(bob_.stats().fetches, before + 1);
}

TEST_F(AfsTest, FlushCacheForcesRefetch) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  alice_.FlushCache();
  const double t0 = clock_.Now();
  ASSERT_TRUE(alice_.Fetch("f").ok());
  EXPECT_GT(clock_.Now(), t0);
}

TEST_F(AfsTest, TransferCostScalesWithSize) {
  ASSERT_TRUE(alice_.Store("small", Bytes(1024, 1)).ok());
  const double t0 = clock_.Now();
  ASSERT_TRUE(alice_.Store("big", Bytes(10 << 20, 1)).ok());
  const double big_cost = clock_.Now() - t0;
  const CostModel& cost = server_.cost();
  EXPECT_NEAR(big_cost, cost.RpcSeconds(10 << 20), 1e-9);
  EXPECT_GT(big_cost, cost.RpcSeconds(1024));
}

TEST_F(AfsTest, LockExclusion) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Lock("f").ok());
  EXPECT_EQ(bob_.Lock("f").code(), ErrorCode::kConflict);
  ASSERT_TRUE(alice_.Unlock("f").ok());
  EXPECT_TRUE(bob_.Lock("f").ok());
  EXPECT_TRUE(bob_.Unlock("f").ok());
}

TEST_F(AfsTest, UnlockRequiresHolder) {
  ASSERT_TRUE(alice_.Lock("f").ok());
  EXPECT_FALSE(bob_.Unlock("f").ok());
  EXPECT_TRUE(alice_.Unlock("f").ok());
  EXPECT_FALSE(alice_.Unlock("f").ok()); // double unlock
}

TEST_F(AfsTest, LockForcesRevalidation) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Fetch("f").ok());
  ASSERT_TRUE(alice_.Lock("f").ok());
  // After taking the lock, the cached copy is no longer trusted.
  const auto before = alice_.stats().fetches;
  ASSERT_TRUE(alice_.Fetch("f").ok());
  EXPECT_EQ(alice_.stats().fetches, before + 1);
  ASSERT_TRUE(alice_.Unlock("f").ok());
}

TEST_F(AfsTest, VersionsIncrement) {
  const auto v1 = alice_.StoreVersioned("f", Bytes{1}).value();
  const auto v2 = alice_.StoreVersioned("f", Bytes{2}).value();
  EXPECT_GT(v2, v1);
  EXPECT_TRUE(alice_.CacheFresh("f", v2));
  EXPECT_FALSE(alice_.CacheFresh("f", v1));
}

TEST_F(AfsTest, AdversaryTamperIsInvisibleAtTransport) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(server_.AdversaryWrite("f", Bytes{9, 9, 9}).ok());
  // Alice's callback was NOT broken: she sees her stale cache...
  EXPECT_EQ(alice_.Fetch("f").value(), (Bytes{1, 2, 3}));
  // ...but a cold client sees the tampered bytes with no transport error.
  EXPECT_EQ(bob_.Fetch("f").value(), (Bytes{9, 9, 9}));
}

TEST_F(AfsTest, AdversaryRollbackAndSwap) {
  ASSERT_TRUE(alice_.Store("a", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Store("b", Bytes{2}).ok());
  const Bytes snapshot = server_.AdversarySnapshot("a").value();
  ASSERT_TRUE(alice_.Store("a", Bytes{3}).ok());
  ASSERT_TRUE(server_.AdversaryRollback("a", snapshot).ok());
  EXPECT_EQ(bob_.Fetch("a").value(), Bytes{1}); // old state served

  ASSERT_TRUE(server_.AdversarySwap("a", "b").ok());
  EXPECT_EQ(bob_.Fetch("b").value(), Bytes{1});
}

TEST_F(AfsTest, RpcCountsAccumulate) {
  const auto rpcs0 = server_.rpc_count();
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(bob_.Fetch("f").ok());
  EXPECT_EQ(server_.rpc_count(), rpcs0 + 2);
}


TEST_F(AfsTest, PartialStoreChargesOnlyChangedBytes) {
  const Bytes big(10 << 20, 1);
  ASSERT_TRUE(alice_.Store("f", big).ok());
  const double t0 = clock_.Now();
  ASSERT_TRUE(alice_.StorePartial("f", big, 4096).ok());
  const double partial = clock_.Now() - t0;
  EXPECT_NEAR(partial, server_.cost().RpcSeconds(4096), 1e-9);
  // Content is still fully replaced.
  EXPECT_EQ(bob_.Fetch("f").value().size(), big.size());
}

// ---- segmented (pipelined) stores -------------------------------------------

TEST_F(AfsTest, StreamedStoreAppliesAtomicallyAtCommit) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(bob_.Fetch("f").ok()); // bob holds a callback

  const auto handle = alice_.StoreStreamBegin("f", 300).value();
  ASSERT_TRUE(alice_.StoreStreamSegment(handle, Bytes(200, 0xAA)).ok());
  // Mid-stream: nothing visible, bob's callback intact.
  EXPECT_EQ(bob_.Fetch("f").value(), Bytes{1});
  EXPECT_TRUE(server_.CallbackValid("bob", "f"));

  ASSERT_TRUE(alice_.StoreStreamSegment(handle, Bytes(100, 0xBB)).ok());
  ASSERT_TRUE(alice_.StoreStreamCommit(handle, 300).ok());

  // Commit: version bumped, bob's callback broken, content whole.
  EXPECT_FALSE(server_.CallbackValid("bob", "f"));
  Bytes want(200, 0xAA);
  want.insert(want.end(), 100, 0xBB);
  EXPECT_EQ(bob_.Fetch("f").value(), want);
  // Alice's own cache was updated at commit (writeback semantics).
  const double t0 = clock_.Now();
  EXPECT_EQ(alice_.Fetch("f").value(), want);
  EXPECT_EQ(clock_.Now(), t0); // served locally, no RPC cost
}

TEST_F(AfsTest, StreamedStoreAbortLeavesObjectUntouched) {
  ASSERT_TRUE(alice_.Store("f", Bytes{7, 7}).ok());
  const auto handle = alice_.StoreStreamBegin("f", 100).value();
  ASSERT_TRUE(alice_.StoreStreamSegment(handle, Bytes(100, 0xEE)).ok());
  ASSERT_TRUE(alice_.StoreStreamAbort(handle).ok());
  EXPECT_EQ(bob_.Fetch("f").value(), (Bytes{7, 7}));
  // The handle is dead after abort.
  EXPECT_FALSE(alice_.StoreStreamSegment(handle, Bytes{1}).ok());
}

TEST_F(AfsTest, StreamedStoreCostMatchesWholeStorePlusOneRtt) {
  const std::size_t total = 4 << 20;
  const double t0 = clock_.Now();
  ASSERT_TRUE(alice_.Store("w", Bytes(total, 1)).ok());
  const double whole = clock_.Now() - t0;

  const double t1 = clock_.Now();
  const auto handle = alice_.StoreStreamBegin("s", total).value();
  for (std::size_t off = 0; off < total; off += 1 << 20) {
    ASSERT_TRUE(alice_.StoreStreamSegment(handle, Bytes(1 << 20, 2)).ok());
  }
  ASSERT_TRUE(alice_.StoreStreamCommit(handle, total).ok());
  const double streamed = clock_.Now() - t1;

  // Segments ride one logical RPC: only the closing acknowledgement adds
  // a control round-trip over the whole-object store.
  EXPECT_NEAR(streamed - whole,
              server_.cost().rtt_seconds + server_.cost().per_op_seconds, 1e-9);
}

TEST_F(AfsTest, FetchRangeUsesWholeFileCache) {
  const std::size_t size = 2 << 20;
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(alice_.Store("f", data).ok());

  // Cold client: the first range pays a full whole-file fetch (OpenAFS
  // transfers files, not ranges)...
  const double t0 = clock_.Now();
  const auto first = bob_.FetchRange("f", 100, 1000).value();
  const double first_cost = clock_.Now() - t0;
  EXPECT_EQ(first.object_size, size);
  EXPECT_EQ(first.data, Bytes(data.begin() + 100, data.begin() + 1100));
  EXPECT_NEAR(first_cost, server_.cost().RpcSeconds(size), 1e-9);

  // ...and every later range is a free cache slice.
  const double t1 = clock_.Now();
  const auto tail = bob_.FetchRange("f", size - 50, 500).value();
  EXPECT_EQ(clock_.Now(), t1);
  EXPECT_EQ(tail.data.size(), 50u); // clamped at EOF
  EXPECT_EQ(tail.data, Bytes(data.end() - 50, data.end()));
}

TEST_F(AfsTest, GetVersionReestablishesCallback) {
  ASSERT_TRUE(alice_.Store("f", Bytes{1}).ok());
  ASSERT_TRUE(bob_.Fetch("f").ok());
  ASSERT_TRUE(alice_.Store("f", Bytes{2}).ok()); // breaks bob's callback
  EXPECT_FALSE(server_.CallbackValid("bob", "f"));
  ASSERT_TRUE(server_.RpcGetVersion("bob", "f").ok());
  EXPECT_TRUE(server_.CallbackValid("bob", "f"));
}

TEST_F(AfsTest, RevalidateOutcomes) {
  const auto v1 = alice_.StoreVersioned("f", Bytes{1}).value();
  // Fresh callback: true without an RPC.
  const auto rpcs0 = server_.rpc_count();
  EXPECT_TRUE(alice_.Revalidate("f", v1).value());
  EXPECT_EQ(server_.rpc_count(), rpcs0);

  // Broken callback, unchanged version: one status RPC, true.
  server_.AdversaryInvalidateCallbacks("f");
  EXPECT_TRUE(alice_.Revalidate("f", v1).value());
  EXPECT_EQ(server_.rpc_count(), rpcs0 + 1);

  // Changed version: false, and the stale cache entry is dropped.
  ASSERT_TRUE(bob_.Store("f", Bytes{2}).ok());
  EXPECT_FALSE(alice_.Revalidate("f", v1).value());
  EXPECT_EQ(alice_.Fetch("f").value(), Bytes{2});

  // Deleted object: false, no crash.
  ASSERT_TRUE(bob_.Remove("f").ok());
  EXPECT_FALSE(alice_.Revalidate("f", v1).value());
}

TEST_F(AfsTest, ListDirDistinguishesFilesAndSubtrees) {
  ASSERT_TRUE(alice_.Store("p/file", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Store("p/dir/nested", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Store("p/both", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Store("p/both/child", Bytes{1}).ok());

  const auto children = alice_.ListDir("p/").value();
  ASSERT_EQ(children.size(), 3u);
  auto find = [&](const std::string& name) {
    for (const auto& c : children) {
      if (c.name == name) return c;
    }
    return storage::AfsServer::ChildEntry{};
  };
  EXPECT_TRUE(find("file").is_exact);
  EXPECT_FALSE(find("file").has_children);
  EXPECT_FALSE(find("dir").is_exact);
  EXPECT_TRUE(find("dir").has_children);
  EXPECT_TRUE(find("both").is_exact);
  EXPECT_TRUE(find("both").has_children);
}

TEST_F(AfsTest, ServerSideRenameMovesSubtreeInOneRpc) {
  ASSERT_TRUE(alice_.Store("src", Bytes{0}).ok());
  ASSERT_TRUE(alice_.Store("src/a", Bytes{1}).ok());
  ASSERT_TRUE(alice_.Store("src/deep/b", Bytes{2}).ok());
  const auto rpcs0 = server_.rpc_count();
  ASSERT_TRUE(alice_.RenameObject("src", "dst").ok());
  EXPECT_EQ(server_.rpc_count(), rpcs0 + 1);
  EXPECT_EQ(bob_.Fetch("dst/deep/b").value(), Bytes{2});
  EXPECT_FALSE(bob_.Fetch("src/a").ok());
  // Renaming a missing path fails cleanly.
  EXPECT_FALSE(alice_.RenameObject("ghost", "x").ok());
}

TEST_F(AfsTest, RevalidationDisableForcesRefetch) {
  const auto v1 = alice_.StoreVersioned("f", Bytes(1 << 20, 1)).value();
  alice_.set_revalidation_enabled(false);
  server_.AdversaryInvalidateCallbacks("f");
  EXPECT_FALSE(alice_.Revalidate("f", v1).value()); // would be true otherwise
}

TEST(SimClock, AttributionAccounts) {
  SimClock clock;
  clock.Advance(1.0);
  {
    SimClock::Attribution a(clock, "meta");
    clock.Advance(2.0);
  }
  clock.Advance(4.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 7.0);
  EXPECT_DOUBLE_EQ(clock.Account("meta"), 2.0);
  EXPECT_DOUBLE_EQ(clock.Account("other"), 0.0);
}

} // namespace
} // namespace nexus::storage
