// Shared test fixture: a simulated world with Intel, SGX machines, an AFS
// deployment and NEXUS clients.
#pragma once

#include <memory>
#include <string>

#include "core/nexus_client.hpp"
#include "core/user_key.hpp"
#include "crypto/rng.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "storage/afs.hpp"
#include "storage/backend.hpp"

namespace nexus::test {

/// One user's machine: SGX CPU + enclave runtime + AFS client + NEXUS.
struct Machine {
  std::unique_ptr<sgx::SgxCpu> cpu;
  std::unique_ptr<sgx::EnclaveRuntime> runtime;
  std::unique_ptr<storage::AfsClient> afs;
  std::unique_ptr<core::NexusClient> nexus;
  core::UserKey user;
};

/// A complete simulated deployment sharing one untrusted AFS server.
class World {
 public:
  explicit World(std::string seed = "world")
      : World(std::move(seed), std::make_unique<storage::MemBackend>()) {}

  /// Deployment whose AFS server stores objects in `backend` — e.g. a
  /// DiskBackend, or a net::RemoteBackend talking to a live nexusd.
  World(std::string seed, std::unique_ptr<storage::StorageBackend> backend)
      : seed_(std::move(seed)),
        rng_(AsBytes(seed_)),
        intel_(AsBytes("intel")),
        server_(std::move(backend), clock_) {}

  /// Provisions a machine for `username` with its own CPU and enclave.
  Machine& AddMachine(const std::string& username) {
    auto m = std::make_unique<Machine>();
    m->cpu = intel_.ProvisionCpu(AsBytes(seed_ + "-cpu-" + username));
    m->runtime = std::make_unique<sgx::EnclaveRuntime>(
        *m->cpu, sgx::NexusEnclaveImage(), AsBytes(seed_ + "-rng-" + username));
    m->afs = std::make_unique<storage::AfsClient>(server_, username);
    m->nexus = std::make_unique<core::NexusClient>(*m->runtime, *m->afs,
                                                   intel_.root_public_key());
    m->user = core::UserKey::Generate(username, rng_);
    machines_.push_back(std::move(m));
    return *machines_.back();
  }

  [[nodiscard]] storage::AfsServer& server() noexcept { return server_; }
  [[nodiscard]] storage::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] sgx::IntelAttestationService& intel() noexcept { return intel_; }
  [[nodiscard]] crypto::Rng& rng() noexcept { return rng_; }

 private:
  std::string seed_;
  crypto::HmacDrbg rng_;
  sgx::IntelAttestationService intel_;
  storage::SimClock clock_;
  storage::AfsServer server_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

} // namespace nexus::test
