// Volume audit / fsck: integrity walk, orphan detection and reclamation.
#include <gtest/gtest.h>

#include "core/fsck.hpp"
#include "test_env.hpp"

namespace nexus::core {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    auto& fs = *machine_->nexus;
    ASSERT_TRUE(fs.Mkdir("a").ok());
    ASSERT_TRUE(fs.Mkdir("a/b").ok());
    ASSERT_TRUE(fs.WriteFile("a/f1", Bytes(1000, 1)).ok());
    ASSERT_TRUE(fs.WriteFile("a/b/f2", Bytes(5000, 2)).ok());
    ASSERT_TRUE(fs.Symlink("a/f1", "link").ok());
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
};

TEST_F(FsckTest, HealthyVolumePasses) {
  const FsckReport report = RunFsck(*machine_->nexus, /*deep=*/true).value();
  EXPECT_EQ(report.audit.directories, 3u); // root, a, a/b
  EXPECT_EQ(report.audit.files, 2u);
  EXPECT_EQ(report.audit.symlinks, 1u);
  EXPECT_EQ(report.audit.plaintext_bytes, 6000u);
  EXPECT_TRUE(report.orphaned_objects.empty())
      << report.orphaned_objects.front();
}

TEST_F(FsckTest, EveryStoredObjectIsReachableOrOrphan) {
  // The reachable set + orphans must exactly cover the store.
  const FsckReport report = RunFsck(*machine_->nexus, false).value();
  const auto meta = machine_->afs->List("nx/").value();
  const auto data = machine_->afs->List("nxd/").value();
  EXPECT_EQ(report.audit.reachable_meta.size() + report.audit.reachable_data.size() +
                report.orphaned_objects.size(),
            meta.size() + data.size());
}

TEST_F(FsckTest, DetectsOrphansAndReclaimsThem) {
  // Plant garbage the way a crashed operation would: unreferenced objects.
  ASSERT_TRUE(world_.server()
                  .AdversaryWrite("nx/deadbeefdeadbeefdeadbeefdeadbeef",
                                  Bytes(100, 1))
                  .ok());
  ASSERT_TRUE(world_.server()
                  .AdversaryWrite("nxd/feedfacefeedfacefeedfacefeedface",
                                  Bytes(100, 2))
                  .ok());

  FsckReport report = RunFsck(*machine_->nexus, false).value();
  ASSERT_EQ(report.orphaned_objects.size(), 2u);

  EXPECT_EQ(ReclaimOrphans(*machine_->nexus, report).value(), 2u);
  report = RunFsck(*machine_->nexus, false).value();
  EXPECT_TRUE(report.orphaned_objects.empty());
  // The volume itself is untouched.
  EXPECT_EQ(machine_->nexus->ReadFile("a/b/f2").value(), Bytes(5000, 2));
}

TEST_F(FsckTest, ShallowMissesDataTamperDeepCatchesIt) {
  const auto names = machine_->afs->List("nxd/").value();
  ASSERT_FALSE(names.empty());
  Bytes blob = world_.server().AdversaryRead(names[0]).value();
  blob[blob.size() / 2] ^= 1;
  ASSERT_TRUE(world_.server().AdversaryWrite(names[0], blob).ok());
  machine_->nexus->DropAllCaches();

  // Shallow audit only checks metadata: passes.
  EXPECT_TRUE(RunFsck(*machine_->nexus, /*deep=*/false).ok());
  // Deep audit verifies every chunk: fails.
  const auto deep = RunFsck(*machine_->nexus, /*deep=*/true);
  EXPECT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(FsckTest, CatchesMetadataTamper) {
  const auto attrs = machine_->nexus->Lookup("a").value();
  const std::string obj = "nx/" + attrs.uuid.ToString();
  Bytes blob = world_.server().AdversaryRead(obj).value();
  blob[blob.size() - 1] ^= 1;
  ASSERT_TRUE(world_.server().AdversaryWrite(obj, blob).ok());
  machine_->nexus->DropAllCaches();

  const auto r = RunFsck(*machine_->nexus, false);
  EXPECT_FALSE(r.ok());
}

TEST_F(FsckTest, HardlinkedFileCountedOnce) {
  ASSERT_TRUE(machine_->nexus->Hardlink("a/f1", "a/f1-link").ok());
  const FsckReport report = RunFsck(*machine_->nexus, true).value();
  // Two dirents point to one filenode: files counts dirents, but the
  // reachable sets must still dedupe to consistent coverage.
  EXPECT_EQ(report.audit.files, 3u);
  EXPECT_TRUE(report.orphaned_objects.empty());
}

TEST_F(FsckTest, RequiresMountedVolume) {
  ASSERT_TRUE(machine_->nexus->Unmount().ok());
  EXPECT_FALSE(RunFsck(*machine_->nexus, false).ok());
}

} // namespace
} // namespace nexus::core
