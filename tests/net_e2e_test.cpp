// End-to-end NEXUS over a real socket: the full client stack (enclave,
// journal, streaming data path) runs unmodified against an AFS deployment
// whose object store is a RemoteBackend talking to a live loopback nexusd.
#include <gtest/gtest.h>

#include "net/net_counters.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "test_env.hpp"

namespace nexus {
namespace {

class NetE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::ResetGlobalNetCounters();
    net::NexusdOptions options;
    options.workers = 8;
    server_ = net::NexusdServer::Start(store_, options).value();

    auto remote = net::RemoteBackend::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    world_ = std::make_unique<test::World>("net-e2e", std::move(remote).value());

    machine_ = &world_->AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = std::move(handle).value();
  }

  void TearDown() override {
    world_.reset(); // clients drop their pooled connections first
    if (server_) server_->Stop();
  }

  core::NexusClient& fs() { return *machine_->nexus; }

  storage::MemBackend store_; // nexusd's actual object store
  std::unique_ptr<net::NexusdServer> server_;
  std::unique_ptr<test::World> world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(NetE2eTest, MountWriteReadOverTheWire) {
  const Bytes content = ToBytes(std::string_view("ciphertext over tcp"));
  ASSERT_TRUE(fs().WriteFile("a.txt", content).ok());
  EXPECT_EQ(fs().ReadFile("a.txt").value(), content);

  // The objects physically live in the daemon's store — and are not
  // plaintext there (the enclave encrypted every one of them).
  EXPECT_GT(store_.object_count(), 0u);
  for (const auto& name : store_.List("")) {
    const Bytes blob = store_.Get(name).value();
    const std::string haystack(blob.begin(), blob.end());
    EXPECT_EQ(haystack.find("ciphertext over tcp"), std::string::npos) << name;
  }
}

TEST_F(NetE2eTest, SixteenMegabyteFileStreamsThroughTheDaemon) {
  crypto::HmacDrbg rng(AsBytes("net-16mb"));
  const Bytes content = rng.Generate(16u << 20);
  ASSERT_TRUE(fs().WriteFile("big.bin", content).ok());
  EXPECT_EQ(fs().ReadFile("big.bin").value(), content);

  const auto profile = fs().Profile();
  EXPECT_GT(profile.parallel.segments_streamed, 0u); // pipelined data path
  EXPECT_GT(profile.net.rpcs, 0u);                   // ... over real RPCs
  EXPECT_GT(profile.net.bytes_sent, content.size()); // payload + overhead
  EXPECT_EQ(profile.net.retries, 0u);                // loopback is clean
  EXPECT_GT(profile.net.rpc_p99_ms, 0.0);
  EXPECT_GE(profile.net.rpc_p99_ms, profile.net.rpc_p50_ms);
}

TEST_F(NetE2eTest, DirectoriesRenamesAndRemovesWork) {
  ASSERT_TRUE(fs().Mkdir("docs").ok());
  ASSERT_TRUE(fs().Mkdir("docs/work").ok());
  ASSERT_TRUE(fs().WriteFile("docs/work/f", Bytes(4096, 3)).ok());
  ASSERT_TRUE(fs().Rename("docs/work/f", "docs/g").ok());
  EXPECT_EQ(fs().ReadFile("docs/g").value(), Bytes(4096, 3));
  ASSERT_TRUE(fs().Remove("docs/g").ok());
  ASSERT_TRUE(fs().Remove("docs/work").ok());
  EXPECT_EQ(fs().Lookup("docs/g").status().code(), ErrorCode::kNotFound);
}

TEST_F(NetE2eTest, JournalRecoveryAcrossSessionsOverTheWire) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());
  ASSERT_TRUE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.Mkdir("d").ok());
  ASSERT_TRUE(nexus.WriteFile("d/replayed", Bytes(32, 9)).ok());
  ASSERT_TRUE(nexus.CommitBatch().ok());
  // The session "dies" without unmounting: the committed journal record
  // sits in the daemon's store, not in any client cache.
  EXPECT_FALSE(machine_->afs->List("nxj/").value().empty());

  machine_->afs->FlushCache();
  core::NexusClient second(*machine_->runtime, *machine_->afs,
                           world_->intel().root_public_key());
  ASSERT_TRUE(
      second.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  const auto profile = second.Profile();
  EXPECT_GE(profile.journal.records_replayed, 1u);
  EXPECT_EQ(second.ReadFile("d/replayed").value(), Bytes(32, 9));
  ASSERT_TRUE(second.Unmount().ok());
}

TEST_F(NetE2eTest, RemountSeesDataWrittenThroughTheDaemon) {
  ASSERT_TRUE(fs().WriteFile("persisted", Bytes(2048, 0x5a)).ok());
  ASSERT_TRUE(fs().Unmount().ok());
  machine_->afs->FlushCache();
  ASSERT_TRUE(
      fs().Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  EXPECT_EQ(fs().ReadFile("persisted").value(), Bytes(2048, 0x5a));
}

} // namespace
} // namespace nexus
