// End-to-end NEXUS over a real socket: the full client stack (enclave,
// journal, streaming data path) runs unmodified against an AFS deployment
// whose object store is a RemoteBackend talking to a live loopback nexusd.
#include <gtest/gtest.h>

#include "net/net_counters.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "test_env.hpp"
#include "trace/trace.hpp"

namespace nexus {
namespace {

/// Enables tracing for one test and cleans up even on assertion failure.
class ScopedTracing {
 public:
  ScopedTracing() {
    trace::SetEnabled(true);
    trace::ResetTrace();
  }
  ~ScopedTracing() {
    trace::SetEnabled(false);
    trace::ResetTrace();
  }
};

class NetE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::ResetGlobalNetCounters();
    net::NexusdOptions options;
    options.workers = 8;
    server_ = net::NexusdServer::Start(store_, options).value();

    auto remote = net::RemoteBackend::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = remote.value().get(); // observed below; owned by the World
    world_ = std::make_unique<test::World>("net-e2e", std::move(remote).value());

    machine_ = &world_->AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = std::move(handle).value();
  }

  void TearDown() override {
    world_.reset(); // clients drop their pooled connections first
    if (server_) server_->Stop();
  }

  core::NexusClient& fs() { return *machine_->nexus; }

  storage::MemBackend store_; // nexusd's actual object store
  std::unique_ptr<net::NexusdServer> server_;
  net::RemoteBackend* remote_ = nullptr; // the World's storage backend
  std::unique_ptr<test::World> world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(NetE2eTest, MountWriteReadOverTheWire) {
  const Bytes content = ToBytes(std::string_view("ciphertext over tcp"));
  ASSERT_TRUE(fs().WriteFile("a.txt", content).ok());
  EXPECT_EQ(fs().ReadFile("a.txt").value(), content);

  // The objects physically live in the daemon's store — and are not
  // plaintext there (the enclave encrypted every one of them).
  EXPECT_GT(store_.object_count(), 0u);
  for (const auto& name : store_.List("")) {
    const Bytes blob = store_.Get(name).value();
    const std::string haystack(blob.begin(), blob.end());
    EXPECT_EQ(haystack.find("ciphertext over tcp"), std::string::npos) << name;
  }
}

TEST_F(NetE2eTest, SixteenMegabyteFileStreamsThroughTheDaemon) {
  crypto::HmacDrbg rng(AsBytes("net-16mb"));
  const Bytes content = rng.Generate(16u << 20);
  ASSERT_TRUE(fs().WriteFile("big.bin", content).ok());
  EXPECT_EQ(fs().ReadFile("big.bin").value(), content);

  const auto profile = fs().Profile();
  EXPECT_GT(profile.parallel.segments_streamed, 0u); // pipelined data path
  EXPECT_GT(profile.net.rpcs, 0u);                   // ... over real RPCs
  EXPECT_GT(profile.net.bytes_sent, content.size()); // payload + overhead
  EXPECT_EQ(profile.net.retries, 0u);                // loopback is clean
  EXPECT_GT(profile.net.rpc_p99_ms, 0.0);
  EXPECT_GE(profile.net.rpc_p99_ms, profile.net.rpc_p50_ms);
}

TEST_F(NetE2eTest, DirectoriesRenamesAndRemovesWork) {
  ASSERT_TRUE(fs().Mkdir("docs").ok());
  ASSERT_TRUE(fs().Mkdir("docs/work").ok());
  ASSERT_TRUE(fs().WriteFile("docs/work/f", Bytes(4096, 3)).ok());
  ASSERT_TRUE(fs().Rename("docs/work/f", "docs/g").ok());
  EXPECT_EQ(fs().ReadFile("docs/g").value(), Bytes(4096, 3));
  ASSERT_TRUE(fs().Remove("docs/g").ok());
  ASSERT_TRUE(fs().Remove("docs/work").ok());
  EXPECT_EQ(fs().Lookup("docs/g").status().code(), ErrorCode::kNotFound);
}

TEST_F(NetE2eTest, JournalRecoveryAcrossSessionsOverTheWire) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());
  ASSERT_TRUE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.Mkdir("d").ok());
  ASSERT_TRUE(nexus.WriteFile("d/replayed", Bytes(32, 9)).ok());
  ASSERT_TRUE(nexus.CommitBatch().ok());
  // The session "dies" without unmounting: the committed journal record
  // sits in the daemon's store, not in any client cache.
  EXPECT_FALSE(machine_->afs->List("nxj/").value().empty());

  machine_->afs->FlushCache();
  core::NexusClient second(*machine_->runtime, *machine_->afs,
                           world_->intel().root_public_key());
  ASSERT_TRUE(
      second.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  const auto profile = second.Profile();
  EXPECT_GE(profile.journal.records_replayed, 1u);
  EXPECT_EQ(second.ReadFile("d/replayed").value(), Bytes(32, 9));
  ASSERT_TRUE(second.Unmount().ok());
}

TEST_F(NetE2eTest, StatsRpcAgreesWithClientCounters) {
  ASSERT_TRUE(fs().WriteFile("stats-probe", Bytes(8192, 1)).ok());
  ASSERT_TRUE(fs().ReadFile("stats-probe").ok());

  // All traffic on this daemon came from this one backend, the loopback is
  // clean (no retries), and the server increments its counters before each
  // response leaves — so at rest the two sides agree exactly. The Stats
  // payload is built before the stats exchange itself is counted.
  const net::NetCounters client = remote_->counters();
  auto stats = remote_->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const net::ServerStats& s = stats.value();

  EXPECT_EQ(s.rpcs_served, client.rpcs);
  EXPECT_EQ(s.bytes_received, client.bytes_sent);
  EXPECT_EQ(s.bytes_sent, client.bytes_received);
  EXPECT_GE(s.connections_accepted, 1u);
  EXPECT_GE(s.active_connections, 1u); // our pooled connection is live
  EXPECT_EQ(s.open_streams, 0u);       // nothing in flight at rest
  EXPECT_EQ(s.protocol_errors, 0u);

  // The per-op table partitions the totals and carries sane latency rows.
  std::uint64_t per_op_total = 0;
  for (const auto& row : s.per_op) {
    EXPECT_GT(row.count, 0u) << unsigned{row.rpc};
    EXPECT_GE(row.p99_ms, row.p50_ms) << unsigned{row.rpc};
    EXPECT_GE(row.p50_ms, 0.0);
    per_op_total += row.count;
  }
  EXPECT_EQ(per_op_total, s.rpcs_served);

  // A second snapshot counts the first Stats exchange.
  auto again = remote_->Stats();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().rpcs_served, s.rpcs_served + 1);
}

TEST_F(NetE2eTest, ClientAndServerSpansShareCorrelationIds) {
  ScopedTracing tracing;
  ASSERT_TRUE(fs().WriteFile("traced", Bytes(4096, 2)).ok());
  machine_->afs->FlushCache();
  ASSERT_TRUE(fs().ReadFile("traced").ok());

  // Quiesce both sides so every span (client and server, all worker
  // threads) is flushed before the snapshot. Server first: its workers
  // timestamp spans against the world's sim clock, so the clock must
  // outlive them.
  server_->Stop();
  server_.reset();
  world_.reset();

  const auto spans = trace::TraceSnapshot();
  std::vector<const trace::SpanRecord*> client_spans;
  std::vector<const trace::SpanRecord*> server_spans;
  for (const auto& s : spans) {
    if (std::string_view(s.category) == "net.client") client_spans.push_back(&s);
    if (std::string_view(s.category) == "net.server") server_spans.push_back(&s);
  }
  ASSERT_FALSE(client_spans.empty());
  ASSERT_FALSE(server_spans.empty());

  // Every client RPC span carries a correlation id, and the server span
  // that served it carries the same id (same process here, so both sides
  // land in one trace).
  for (const auto* c : client_spans) {
    EXPECT_NE(c->correlation, 0u) << c->name;
    bool matched = false;
    for (const auto* s : server_spans) {
      if (s->correlation == c->correlation) {
        matched = true;
        // Matched spans describe the same RPC.
        EXPECT_STREQ(s->name, c->name);
        break;
      }
    }
    EXPECT_TRUE(matched) << c->name << " corr=" << c->correlation;
  }
}

TEST_F(NetE2eTest, RemountSeesDataWrittenThroughTheDaemon) {
  ASSERT_TRUE(fs().WriteFile("persisted", Bytes(2048, 0x5a)).ok());
  ASSERT_TRUE(fs().Unmount().ok());
  machine_->afs->FlushCache();
  ASSERT_TRUE(
      fs().Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  EXPECT_EQ(fs().ReadFile("persisted").value(), Bytes(2048, 0x5a));
}

} // namespace
} // namespace nexus
