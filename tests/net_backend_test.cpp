// nexusd + RemoteBackend integration over a real loopback socket: the
// backend contract, large streamed puts, concurrent clients, hostile
// frames, and clean shutdown semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus::net {
namespace {

RemoteBackendOptions FastOptions() {
  RemoteBackendOptions options;
  options.max_attempts = 2;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 2;
  options.rpc_deadline_ms = 10000;
  return options;
}

class NetBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A live connection parks a worker for its lifetime, so give the test
    // daemon headroom for the fixture client plus per-test extras.
    NexusdOptions options;
    options.workers = 8;
    server_ = NexusdServer::Start(store_, options).value();
    auto client =
        RemoteBackend::Connect("127.0.0.1", server_->port(), FastOptions());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    remote_ = std::move(client).value();
  }

  storage::MemBackend store_;
  std::unique_ptr<NexusdServer> server_;
  std::unique_ptr<RemoteBackend> remote_;
};

TEST_F(NetBackendTest, PutGetRoundTrip) {
  const Bytes data = {1, 2, 3, 0, 255};
  ASSERT_TRUE(remote_->Put("obj", data).ok());
  EXPECT_EQ(remote_->Get("obj").value(), data);
  // The object really lives on the server, not in the client.
  EXPECT_EQ(store_.Get("obj").value(), data);
}

TEST_F(NetBackendTest, ServerVerdictsPropagate) {
  auto missing = remote_->Get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(remote_->Delete("nope").ok());
}

TEST_F(NetBackendTest, ExistsListDelete) {
  ASSERT_TRUE(remote_->Put("nx/b", Bytes{1}).ok());
  ASSERT_TRUE(remote_->Put("nx/a", Bytes{2}).ok());
  ASSERT_TRUE(remote_->Put("other", Bytes{3}).ok());
  EXPECT_TRUE(remote_->Exists("nx/a"));
  EXPECT_FALSE(remote_->Exists("nx/c"));
  const auto names = remote_->List("nx/");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "nx/a");
  EXPECT_EQ(names[1], "nx/b");
  ASSERT_TRUE(remote_->Delete("nx/a").ok());
  EXPECT_FALSE(remote_->Exists("nx/a"));
}

TEST_F(NetBackendTest, AwkwardNamesSurviveTheWire) {
  for (const std::string name :
       {"with/slash", "with space", "uni\xc3\xa9", "%percent", "trailing%",
        "nx/", "..dots"}) {
    ASSERT_TRUE(remote_->Put(name, Bytes{7}).ok()) << name;
    EXPECT_EQ(remote_->Get(name).value(), Bytes{7}) << name;
  }
}

TEST_F(NetBackendTest, EmptyObjectRoundTrips) {
  ASSERT_TRUE(remote_->Put("empty", {}).ok());
  EXPECT_TRUE(remote_->Exists("empty"));
  EXPECT_TRUE(remote_->Get("empty").value().empty());
}

TEST_F(NetBackendTest, SixteenMegabyteStreamedPut) {
  Bytes want;
  auto stream = remote_->OpenPutStream("big").value();
  for (int seg = 0; seg < 16; ++seg) {
    const Bytes segment(1 << 20, static_cast<std::uint8_t>(seg + 1));
    ASSERT_TRUE(stream->Append(segment).ok()) << seg;
    want.insert(want.end(), segment.begin(), segment.end());
    EXPECT_FALSE(store_.Exists("big")); // nothing visible mid-stream
  }
  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(remote_->Get("big").value(), want);
}

TEST_F(NetBackendTest, StreamAbortLeavesStoreUntouched) {
  ASSERT_TRUE(remote_->Put("s", Bytes{7}).ok());
  auto stream = remote_->OpenPutStream("s").value();
  ASSERT_TRUE(stream->Append(Bytes(1000, 0xEE)).ok());
  stream->Abort();
  EXPECT_EQ(remote_->Get("s").value(), Bytes{7});
  // The stream is dead after Abort.
  EXPECT_EQ(stream->Append(Bytes{1}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(stream->Commit().code(), ErrorCode::kInvalidArgument);
}

TEST_F(NetBackendTest, DroppedStreamIsAbortedNotCommitted) {
  {
    auto stream = remote_->OpenPutStream("dropped").value();
    ASSERT_TRUE(stream->Append(Bytes(100, 1)).ok());
    // Destroyed without Commit.
  }
  EXPECT_FALSE(remote_->Exists("dropped"));
}

// A client that dies mid-stream (connection close, no Abort RPC) must not
// leave a partial object: the server aborts the stream with the
// connection.
TEST_F(NetBackendTest, DisconnectAbortsServerSideStreams) {
  {
    auto conn =
        TcpTransport::Dial("127.0.0.1", server_->port(), 2000, 2000).value();
    Writer begin = BeginRequest(Rpc::kStreamBegin);
    begin.Str("torn");
    ASSERT_TRUE(conn->SendFrame(begin.bytes()).ok());
    ASSERT_TRUE(conn->RecvFrame().ok());
    // Connection closes here with the stream open.
  }
  // Another RPC round trip gives the server time to notice the close.
  for (int i = 0; i < 100 && server_->stats().streams_aborted_on_disconnect == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->stats().streams_aborted_on_disconnect, 1u);
  EXPECT_FALSE(remote_->Exists("torn"));
}

TEST_F(NetBackendTest, GarbageFrameKillsConnectionOnly) {
  {
    auto conn =
        TcpTransport::Dial("127.0.0.1", server_->port(), 2000, 2000).value();
    const Bytes junk = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(conn->SendFrame(junk).ok());
    // Server drops the connection without replying.
    EXPECT_FALSE(conn->RecvFrame().ok());
  }
  EXPECT_GE(server_->stats().protocol_errors, 1u);
  // The daemon itself is fine: existing clients keep working.
  ASSERT_TRUE(remote_->Put("after", Bytes{1}).ok());
  EXPECT_EQ(remote_->Get("after").value(), Bytes{1});
}

TEST_F(NetBackendTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 25;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      auto client =
          RemoteBackend::Connect("127.0.0.1", server_->port(), FastOptions());
      if (!client.ok()) {
        failures[c] = client.status();
        return;
      }
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string name =
            "c" + std::to_string(c) + "/o" + std::to_string(i);
        const Bytes data(100 + i, static_cast<std::uint8_t>(c));
        const Status put = client.value()->Put(name, data);
        if (!put.ok()) {
          failures[c] = put;
          return;
        }
        auto back = client.value()->Get(name);
        if (!back.ok() || back.value() != data) {
          failures[c] = Error(ErrorCode::kInternal, "bad readback " + name);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].ok()) << "client " << c << ": "
                                  << failures[c].ToString();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(remote_->List("c" + std::to_string(c) + "/").size(),
              static_cast<std::size_t>(kOpsPerClient));
  }
}

TEST_F(NetBackendTest, CountersTrackTraffic) {
  ASSERT_TRUE(remote_->Put("counted", Bytes(1000, 1)).ok());
  ASSERT_TRUE(remote_->Get("counted").ok());
  const NetCounters counters = remote_->counters();
  EXPECT_GE(counters.rpcs, 3u); // ping + put + get
  EXPECT_GT(counters.bytes_sent, 1000u);
  EXPECT_GT(counters.bytes_received, 1000u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.reconnects, 0u);

  const auto stats = server_->stats();
  EXPECT_GE(stats.rpcs_served, counters.rpcs);
  EXPECT_GE(stats.connections_accepted, 1u);
}

TEST_F(NetBackendTest, StopUnblocksConnectedClientsAndIsIdempotent) {
  ASSERT_TRUE(remote_->Put("pre", Bytes{1}).ok());
  server_->Stop();
  server_->Stop(); // idempotent
  // The client surfaces a clean error (after its bounded retries), not a
  // hang, and the pre-existing object survived in the backend.
  EXPECT_FALSE(remote_->Put("post", Bytes{2}).ok());
  EXPECT_TRUE(store_.Exists("pre"));
  EXPECT_FALSE(store_.Exists("post"));
}

TEST_F(NetBackendTest, ConnectFailsFastAgainstDeadServer) {
  const std::uint16_t port = server_->port();
  server_->Stop();
  RemoteBackendOptions options = FastOptions();
  options.connect_deadline_ms = 500;
  auto client = RemoteBackend::Connect("127.0.0.1", port, options);
  EXPECT_FALSE(client.ok());
}

// The daemon serves a DiskBackend identically — the wire protocol composes
// with on-disk name escaping and atomic temp-file publication.
TEST(NetDiskBackendTest, DiskServedRoundTripWithHostileNames) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("nexus-netdisk-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto disk = storage::DiskBackend::Open(dir.string());
    ASSERT_TRUE(disk.ok());
    storage::DiskBackend backend = std::move(disk).value();
    auto server = NexusdServer::Start(backend).value();
    auto remote =
        RemoteBackend::Connect("127.0.0.1", server->port(), FastOptions())
            .value();

    for (const std::string name : {"a/b/c", "100%", "uni\xc3\xa9", "nx/"}) {
      ASSERT_TRUE(remote->Put(name, Bytes{5}).ok()) << name;
      EXPECT_EQ(remote->Get(name).value(), Bytes{5}) << name;
    }
    auto stream = remote->OpenPutStream("streamed").value();
    ASSERT_TRUE(stream->Append(Bytes(1 << 20, 0xAB)).ok());
    ASSERT_TRUE(stream->Append(Bytes(123, 0xCD)).ok());
    ASSERT_TRUE(stream->Commit().ok());
    Bytes want(1 << 20, 0xAB);
    want.insert(want.end(), 123, 0xCD);
    EXPECT_EQ(remote->Get("streamed").value(), want);
    server->Stop();
  }
  std::filesystem::remove_all(dir);
}

} // namespace
} // namespace nexus::net
