// VFS conformance suite, parameterized over both mounts: the bare-AFS
// baseline and NEXUS must expose identical POSIX-like behaviour (they run
// the same workload streams in the evaluation).
#include <gtest/gtest.h>

#include "test_env.hpp"
#include "vfs/afs_passthrough_fs.hpp"
#include "vfs/buffered_file.hpp"
#include "vfs/nexus_fs.hpp"

namespace nexus::vfs {
namespace {

enum class MountKind { kPassthrough, kNexus };

class VfsConformanceTest : public ::testing::TestWithParam<MountKind> {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("user");
    if (GetParam() == MountKind::kNexus) {
      auto handle = machine_->nexus->CreateVolume(machine_->user);
      ASSERT_TRUE(handle.ok());
      fs_ = std::make_unique<NexusFs>(*machine_->nexus);
    } else {
      fs_ = std::make_unique<AfsPassthroughFs>(*machine_->afs);
    }
  }

  FileSystem& fs() { return *fs_; }

  test::World world_;
  test::Machine* machine_ = nullptr;
  std::unique_ptr<FileSystem> fs_;
};

TEST_P(VfsConformanceTest, WholeFileRoundTrip) {
  const Bytes data = ToBytes(std::string_view("vfs round trip"));
  ASSERT_TRUE(fs().WriteWholeFile("f.txt", data).ok());
  EXPECT_EQ(fs().ReadWholeFile("f.txt").value(), data);
}

TEST_P(VfsConformanceTest, ReadMissingFails) {
  EXPECT_EQ(fs().ReadWholeFile("nope").status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(fs().Open("nope", OpenMode::kRead).ok());
}

TEST_P(VfsConformanceTest, OpenModes) {
  ASSERT_TRUE(fs().WriteWholeFile("f", Bytes(100, 1)).ok());
  // kWrite truncates.
  {
    auto f = fs().Open("f", OpenMode::kWrite).value();
    EXPECT_EQ(f->Size(), 0u);
    ASSERT_TRUE(f->Write(0, Bytes{2, 2}).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  EXPECT_EQ(fs().ReadWholeFile("f").value(), (Bytes{2, 2}));
  // kReadWrite preserves and allows in-place update.
  {
    auto f = fs().Open("f", OpenMode::kReadWrite).value();
    EXPECT_EQ(f->Size(), 2u);
    ASSERT_TRUE(f->Write(1, Bytes{9}).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  EXPECT_EQ(fs().ReadWholeFile("f").value(), (Bytes{2, 9}));
}

TEST_P(VfsConformanceTest, ReadsAtOffsets) {
  Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(fs().WriteWholeFile("f", data).ok());
  auto f = fs().Open("f", OpenMode::kRead).value();
  Bytes buf(10);
  EXPECT_EQ(f->Read(500, buf).value(), 10u);
  EXPECT_EQ(buf[0], static_cast<std::uint8_t>(500));
  EXPECT_EQ(f->Read(995, buf).value(), 5u);    // short read at EOF
  EXPECT_EQ(f->Read(2000, buf).value(), 0u);   // past EOF
  ASSERT_TRUE(f->Close().ok());
}

TEST_P(VfsConformanceTest, AppendAndSync) {
  auto f = fs().Open("log", OpenMode::kWrite).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f->Append(Bytes(100, static_cast<std::uint8_t>(i))).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  ASSERT_TRUE(f->Close().ok());
  const Bytes back = fs().ReadWholeFile("log").value();
  ASSERT_EQ(back.size(), 1000u);
  EXPECT_EQ(back[950], 9);
}

TEST_P(VfsConformanceTest, SyncMakesContentDurable) {
  auto f = fs().Open("f", OpenMode::kWrite).value();
  ASSERT_TRUE(f->Write(0, Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(f->Sync().ok());
  // Visible to a second reader before close.
  EXPECT_EQ(fs().ReadWholeFile("f").value(), (Bytes{1, 2, 3}));
  ASSERT_TRUE(f->Close().ok());
}

TEST_P(VfsConformanceTest, TruncateShrinksAndGrows) {
  ASSERT_TRUE(fs().WriteWholeFile("f", Bytes(100, 7)).ok());
  auto f = fs().Open("f", OpenMode::kReadWrite).value();
  ASSERT_TRUE(f->Truncate(10).ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(fs().ReadWholeFile("f").value(), Bytes(10, 7));
}

TEST_P(VfsConformanceTest, EmptyFileFlushes) {
  auto f = fs().Open("empty", OpenMode::kWrite).value();
  ASSERT_TRUE(f->Close().ok());
  EXPECT_TRUE(fs().Exists("empty"));
  EXPECT_TRUE(fs().ReadWholeFile("empty").value().empty());
}

TEST_P(VfsConformanceTest, DirectoriesAndReadDir) {
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().Mkdir("d/sub").ok());
  ASSERT_TRUE(fs().WriteWholeFile("d/a", Bytes{1}).ok());
  ASSERT_TRUE(fs().WriteWholeFile("d/b", Bytes{2}).ok());

  auto entries = fs().ReadDir("d").value();
  ASSERT_EQ(entries.size(), 3u);
  int dirs = 0, files = 0;
  for (const auto& e : entries) {
    (e.type == FileType::kDirectory ? dirs : files) += 1;
  }
  EXPECT_EQ(dirs, 1);
  EXPECT_EQ(files, 2);

  EXPECT_FALSE(fs().ReadDir("missing").ok());
  EXPECT_EQ(fs().Mkdir("d").code(), ErrorCode::kAlreadyExists);
}

TEST_P(VfsConformanceTest, MkdirAll) {
  ASSERT_TRUE(fs().MkdirAll("a/b/c/d").ok());
  EXPECT_EQ(fs().Stat("a/b/c/d")->type, FileType::kDirectory);
  // Idempotent.
  EXPECT_TRUE(fs().MkdirAll("a/b/c/d").ok());
}

TEST_P(VfsConformanceTest, StatReportsTypeAndSize) {
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().WriteWholeFile("d/f", Bytes(42, 1)).ok());
  EXPECT_EQ(fs().Stat("d")->type, FileType::kDirectory);
  const auto st = fs().Stat("d/f").value();
  EXPECT_EQ(st.type, FileType::kFile);
  EXPECT_EQ(st.size, 42u);
  EXPECT_EQ(fs().Stat("ghost").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Stat("")->type, FileType::kDirectory); // root
}

TEST_P(VfsConformanceTest, RemoveSemantics) {
  ASSERT_TRUE(fs().WriteWholeFile("f", Bytes{1}).ok());
  ASSERT_TRUE(fs().Mkdir("d").ok());
  ASSERT_TRUE(fs().WriteWholeFile("d/inner", Bytes{1}).ok());

  EXPECT_TRUE(fs().Remove("f").ok());
  EXPECT_FALSE(fs().Exists("f"));
  EXPECT_FALSE(fs().Remove("d").ok()); // not empty
  ASSERT_TRUE(fs().Remove("d/inner").ok());
  EXPECT_TRUE(fs().Remove("d").ok());
  EXPECT_FALSE(fs().Remove("ghost").ok());
}

TEST_P(VfsConformanceTest, RenameFile) {
  ASSERT_TRUE(fs().WriteWholeFile("old", Bytes{5}).ok());
  ASSERT_TRUE(fs().Rename("old", "new").ok());
  EXPECT_FALSE(fs().Exists("old"));
  EXPECT_EQ(fs().ReadWholeFile("new").value(), Bytes{5});
}

TEST_P(VfsConformanceTest, RenameDirectorySubtree) {
  ASSERT_TRUE(fs().MkdirAll("src/deep").ok());
  ASSERT_TRUE(fs().WriteWholeFile("src/deep/f", Bytes{3}).ok());
  ASSERT_TRUE(fs().Rename("src", "dst").ok());
  EXPECT_EQ(fs().ReadWholeFile("dst/deep/f").value(), Bytes{3});
  EXPECT_FALSE(fs().Exists("src"));
}

TEST_P(VfsConformanceTest, SymlinkRoundTrip) {
  ASSERT_TRUE(fs().WriteWholeFile("target", Bytes{1}).ok());
  ASSERT_TRUE(fs().Symlink("target", "link").ok());
  EXPECT_EQ(fs().Readlink("link").value(), "target");
  EXPECT_EQ(fs().Symlink("target", "link").code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fs().Remove("link").ok());
  EXPECT_FALSE(fs().Readlink("link").ok());
  EXPECT_TRUE(fs().Exists("target"));
}

TEST_P(VfsConformanceTest, ClosedHandleRejectsUse) {
  auto f = fs().Open("f", OpenMode::kWrite).value();
  ASSERT_TRUE(f->Close().ok());
  EXPECT_FALSE(f->Write(0, Bytes{1}).ok());
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(f->Close().ok());
  Bytes buf(4);
  EXPECT_FALSE(f->Read(0, buf).ok());
}

TEST_P(VfsConformanceTest, LargeFileMultiMegabyte) {
  crypto::HmacDrbg rng(AsBytes("vfs-large"));
  const Bytes data = rng.Generate((3 << 20) + 777);
  ASSERT_TRUE(fs().WriteWholeFile("big", data).ok());
  EXPECT_EQ(fs().ReadWholeFile("big").value(), data);
}

TEST_P(VfsConformanceTest, PartialSyncChargesLessThanFullStore) {
  // A 4 MB file where one byte changes: fsync must ship roughly one AFS
  // chunk (or one NEXUS chunk), not the whole file.
  const Bytes data(4 << 20, 0xaa);
  ASSERT_TRUE(fs().WriteWholeFile("big", data).ok());

  auto& clock = world_.clock();
  auto f = fs().Open("big", OpenMode::kReadWrite).value();
  const double t0 = clock.Now();
  ASSERT_TRUE(f->Write(100, Bytes{0x55}).ok());
  ASSERT_TRUE(f->Sync().ok());
  const double partial_cost = clock.Now() - t0;
  ASSERT_TRUE(f->Close().ok());

  // Full store of the same file for comparison.
  const double t1 = clock.Now();
  ASSERT_TRUE(fs().WriteWholeFile("big2", data).ok());
  const double full_cost = clock.Now() - t1;

  EXPECT_LT(partial_cost, full_cost / 2) << "sync shipped too much data";
  // Content must still be correct.
  EXPECT_EQ(fs().ReadWholeFile("big").value()[100], 0x55);
}

INSTANTIATE_TEST_SUITE_P(BothMounts, VfsConformanceTest,
                         ::testing::Values(MountKind::kPassthrough,
                                           MountKind::kNexus),
                         [](const auto& info) {
                           return info.param == MountKind::kPassthrough
                                      ? "OpenAfsBaseline"
                                      : "Nexus";
                         });

} // namespace
} // namespace nexus::vfs
