// Event-driven nexusd: the epoll/poll reactor serve mode. Covers the
// reactor-specific failure surface that the thread-per-connection tests
// never exercised — trickled frames, half-open connections, hundreds of
// idle sockets on a flat thread count — plus the legacy mode staying
// serviceable, buffer-arena accounting, and the readahead/batch client
// optimizations that ride this PR.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus::net {
namespace {

// TSan multiplies every synchronization cost; shrink the soak dimensions
// so the suite stays green (and fast) under -fsanitize=thread.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

RemoteBackendOptions FastOptions() {
  RemoteBackendOptions options;
  options.max_attempts = 2;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 2;
  options.rpc_deadline_ms = 10000;
  return options;
}

/// Raw nonblocking-free client socket: connects and leaves all framing to
/// the test (slowloris / garbage / half-open scenarios).
int RawDial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

class NetReactorTest : public ::testing::Test {
 protected:
  void StartServer(NexusdOptions options = {}) {
    server_ = NexusdServer::Start(store_, options).value();
    auto client =
        RemoteBackend::Connect("127.0.0.1", server_->port(), FastOptions());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    remote_ = std::move(client).value();
  }

  storage::MemBackend store_;
  std::unique_ptr<NexusdServer> server_;
  std::unique_ptr<RemoteBackend> remote_;
};

TEST_F(NetReactorTest, ReactorServesBasicOpsStreamsAndStats) {
  StartServer(); // reactor is the default serve mode
  ASSERT_TRUE(remote_->Put("a", Bytes{1, 2, 3}).ok());
  EXPECT_EQ(remote_->Get("a").value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(remote_->Exists("a"));
  EXPECT_FALSE(remote_->Exists("b"));
  EXPECT_EQ(remote_->List("").size(), 1u);

  auto stream = remote_->OpenPutStream("streamed").value();
  ASSERT_TRUE(stream->Append(Bytes(1 << 20, 0xAB)).ok());
  ASSERT_TRUE(stream->Append(Bytes(17, 0xCD)).ok());
  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(remote_->Get("streamed").value().size(), (1u << 20) + 17);

  const ServerStats s = remote_->Stats().value();
  EXPECT_GT(s.epoll_wakeups, 0u);
  EXPECT_GE(s.arena_slabs_high_water, 1u);
  // One frame of this conversation (the 1 MiB append) overflowed a slab.
  EXPECT_GE(s.arena_oversize_frames, 1u);
  // Loop + rpc pool + acceptless reactor: a handful of threads, not one
  // per connection.
  EXPECT_GT(s.resident_threads, 0u);
  EXPECT_GE(s.loop_dispatch_p99_ms, 0.0);
}

TEST_F(NetReactorTest, ThreadPerConnectionModeStillServes) {
  NexusdOptions options;
  options.serve_mode = ServeMode::kThreadPerConnection;
  options.workers = 8;
  StartServer(options);
  ASSERT_TRUE(remote_->Put("legacy", Bytes{9}).ok());
  EXPECT_EQ(remote_->Get("legacy").value(), Bytes{9});
  auto stream = remote_->OpenPutStream("s").value();
  ASSERT_TRUE(stream->Append(Bytes(4096, 2)).ok());
  ASSERT_TRUE(stream->Commit().ok());
  EXPECT_EQ(remote_->Get("s").value().size(), 4096u);

  // No loop, no arena in the legacy layout.
  const ServerStats s = remote_->Stats().value();
  EXPECT_EQ(s.epoll_wakeups, 0u);
  EXPECT_EQ(s.arena_slabs_high_water, 0u);
}

// A malicious (or glacial) client dribbling a request one byte at a time
// must not stall anyone else: the loop thread never blocks on a partial
// frame, it just parks the connection until more bytes arrive.
TEST_F(NetReactorTest, SlowlorisTrickleDoesNotStallOtherClients) {
  StartServer();
  ASSERT_TRUE(remote_->Put("hot", Bytes{7}).ok());

  Writer ping = BeginRequest(Rpc::kPing, /*correlation=*/1);
  Bytes wire;
  const std::uint32_t len = static_cast<std::uint32_t>(ping.bytes().size());
  wire.push_back(static_cast<std::uint8_t>(len & 0xff));
  wire.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  wire.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  wire.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  wire.insert(wire.end(), ping.bytes().begin(), ping.bytes().end());

  const int slow = RawDial(server_->port());
  ASSERT_GE(slow, 0);
  std::atomic<bool> done{false};
  std::thread trickler([&] {
    for (std::size_t i = 0; i < wire.size(); ++i) {
      if (!SendAll(slow, wire.data() + i, 1)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
  });

  // While the trickle crawls, a healthy client hammers the daemon.
  int served = 0;
  while (!done.load()) {
    ASSERT_EQ(remote_->Get("hot").value(), Bytes{7});
    ++served;
  }
  trickler.join();
  EXPECT_GT(served, 10);

  // The trickled ping, once complete, still gets its reply.
  char buf[256];
  ssize_t got = 0;
  while (got < 4) {
    const ssize_t n = ::recv(slow, buf + got, sizeof(buf) - got, 0);
    ASSERT_GT(n, 0) << "trickled connection never got its pong";
    got += n;
  }
  ::close(slow);
}

// Half-open connections (connected, never a byte sent) cost the reactor a
// registry slot — not a thread, not a buffer slab.
TEST_F(NetReactorTest, HalfOpenConnectionsDoNotLeakSlabsOrWedgeTheLoop) {
  StartServer();
  const std::uint64_t slabs_before = remote_->Stats().value().arena_slabs_in_use;

  std::vector<int> idle;
  for (int i = 0; i < 32; ++i) {
    const int fd = RawDial(server_->port());
    ASSERT_GE(fd, 0);
    idle.push_back(fd);
  }
  // The daemon keeps serving with 32 half-open peers parked.
  ASSERT_TRUE(remote_->Put("alive", Bytes{1}).ok());
  EXPECT_EQ(remote_->Get("alive").value(), Bytes{1});
  ServerStats s = remote_->Stats().value();
  EXPECT_GE(s.active_connections, 32u);
  // Idle connections hold no arena slabs (nothing was ever read for them);
  // +1 tolerance for the slab transiently serving this Stats request.
  EXPECT_LE(s.arena_slabs_in_use, slabs_before + 1);

  for (const int fd : idle) ::close(fd);
  // The loop reaps the EOFs; the gauge drains back down.
  for (int i = 0; i < 1000; ++i) {
    if (remote_->Stats().value().active_connections <= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(remote_->Stats().value().active_connections, 4u);
  EXPECT_EQ(remote_->Get("alive").value(), Bytes{1});
}

TEST_F(NetReactorTest, MalformedFrameKillsOnlyItsConnection) {
  StartServer();
  const int bad = RawDial(server_->port());
  ASSERT_GE(bad, 0);
  const Bytes junk = {4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(SendAll(bad, junk.data(), junk.size()));
  char buf[16];
  EXPECT_LE(::recv(bad, buf, sizeof(buf), 0), 0); // dropped, no reply
  ::close(bad);
  for (int i = 0; i < 1000 && server_->stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server_->stats().protocol_errors, 1u);
  ASSERT_TRUE(remote_->Put("after", Bytes{1}).ok());
  EXPECT_EQ(remote_->Get("after").value(), Bytes{1});
}

TEST_F(NetReactorTest, OversizedLengthPrefixKillsConnection) {
  StartServer();
  const int bad = RawDial(server_->port());
  ASSERT_GE(bad, 0);
  const std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0xff}; // ~4 GiB frame
  ASSERT_TRUE(SendAll(bad, prefix, sizeof(prefix)));
  char buf[16];
  EXPECT_LE(::recv(bad, buf, sizeof(buf), 0), 0);
  ::close(bad);
  // The byte stream was garbage, not a protocol error: same silence as
  // the transport layer, and the daemon is unbothered.
  ASSERT_TRUE(remote_->Put("fine", Bytes{2}).ok());
  EXPECT_EQ(remote_->Get("fine").value(), Bytes{2});
}

TEST_F(NetReactorTest, StreamsAbortOnDisconnectUnderReactor) {
  StartServer();
  {
    auto conn =
        TcpTransport::Dial("127.0.0.1", server_->port(), 2000, 2000).value();
    Writer begin = BeginRequest(Rpc::kStreamBegin);
    begin.Str("torn");
    ASSERT_TRUE(conn->SendFrame(begin.bytes()).ok());
    ASSERT_TRUE(conn->RecvFrame().ok());
    // Connection closes here with the stream open.
  }
  for (int i = 0;
       i < 1000 && server_->stats().streams_aborted_on_disconnect == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->stats().streams_aborted_on_disconnect, 1u);
  EXPECT_FALSE(remote_->Exists("torn"));
}

// Many concurrent clients over one reactor loop: correctness under real
// socket interleavings (and, in the TSan build, the lens that pins the
// loop/worker handoff as race-free).
TEST_F(NetReactorTest, ManyConnectionsSoak) {
  NexusdOptions options;
  options.rpc_workers = 4;
  StartServer(options);
  constexpr int kClientsFull = 12, kClientsTsan = 6;
  constexpr int kOpsFull = 40, kOpsTsan = 12;
  const int clients = kTsan ? kClientsTsan : kClientsFull;
  const int ops = kTsan ? kOpsTsan : kOpsFull;

  std::vector<std::thread> threads;
  std::vector<Status> failures(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([this, c, ops, &failures] {
      auto client =
          RemoteBackend::Connect("127.0.0.1", server_->port(), FastOptions());
      if (!client.ok()) {
        failures[c] = client.status();
        return;
      }
      for (int i = 0; i < ops; ++i) {
        const std::string name =
            "c" + std::to_string(c) + "/o" + std::to_string(i);
        const Bytes data(64 + i, static_cast<std::uint8_t>(c + 1));
        if (Status put = client.value()->Put(name, data); !put.ok()) {
          failures[c] = put;
          return;
        }
        auto back = client.value()->Get(name);
        if (!back.ok() || back.value() != data) {
          failures[c] = Error(ErrorCode::kInternal, "bad readback " + name);
          return;
        }
        if (i % 8 == 0) {
          const auto multi = client.value()->MultiGet({name, "absent"});
          if (multi.size() != 2 || !multi[0].ok() || multi[1].ok()) {
            failures[c] = Error(ErrorCode::kInternal, "bad multiget " + name);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < clients; ++c) {
    EXPECT_TRUE(failures[c].ok())
        << "client " << c << ": " << failures[c].ToString();
  }
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

// High-connection smoke: hundreds of idle sockets at a flat thread count.
// NEXUS_C10K_CONNS scales it up in CI (where the fd limit is raised); the
// default stays modest for local runs.
TEST_F(NetReactorTest, HighConnectionCountSmoke) {
  StartServer();
  int conns = 64;
  if (const char* env = std::getenv("NEXUS_C10K_CONNS")) {
    conns = std::max(1, std::atoi(env));
  }
  if (kTsan) conns = std::min(conns, 64);

  const std::uint64_t threads_before =
      remote_->Stats().value().resident_threads;
  std::vector<int> idle;
  idle.reserve(static_cast<std::size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    const int fd = RawDial(server_->port());
    ASSERT_GE(fd, 0) << "dial " << i << " failed (fd limit?)";
    idle.push_back(fd);
  }
  for (int i = 0; i < 2000; ++i) {
    if (server_->stats().active_connections >=
        static_cast<std::uint64_t>(conns)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats s = remote_->Stats().value();
  EXPECT_GE(s.active_connections, static_cast<std::uint64_t>(conns));
  // The whole point: connection count grew by hundreds, thread count by 0.
  EXPECT_EQ(s.resident_threads, threads_before);
  ASSERT_TRUE(remote_->Put("under-load", Bytes{3}).ok());
  EXPECT_EQ(remote_->Get("under-load").value(), Bytes{3});
  for (const int fd : idle) ::close(fd);
}

// ---- client-side optimizations riding this PR ------------------------------

/// MemBackend wrapper that blocks Get("slow/…") until released — holds a
/// speculative fetch open on the server so a demand read can join it.
class GatedBackend final : public storage::StorageBackend {
 public:
  explicit GatedBackend(storage::StorageBackend& inner) : inner_(inner) {}

  Result<Bytes> Get(const std::string& name) override {
    if (name.rfind("slow/", 0) == 0) {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    }
    return inner_.Get(name);
  }
  Status Put(const std::string& name, ByteSpan data) override {
    return inner_.Put(name, data);
  }
  Status Delete(const std::string& name) override {
    return inner_.Delete(name);
  }
  bool Exists(const std::string& name) override { return inner_.Exists(name); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void Release() {
    const std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  storage::StorageBackend& inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;    // under mu_
  bool released_ = false; // under mu_
};

// A demand Get that finds its object already in flight as a speculative
// readahead waits on that RPC instead of issuing a duplicate — observable
// as prefetch_joined, and as exactly ONE kGet reaching the server.
TEST(NetReactorPrefetch, DemandGetJoinsInflightSpeculation) {
  storage::MemBackend store;
  GatedBackend gated(store);
  auto server = NexusdServer::Start(gated).value();
  auto remote =
      RemoteBackend::Connect("127.0.0.1", server->port(), FastOptions())
          .value();
  ASSERT_TRUE(remote->Put("slow/x", Bytes{5, 6, 7}).ok());

  std::atomic<int> delivered{0};
  remote->SetPrefetchSink([&](const std::string&, Result<Bytes> object,
                              bool) {
    if (object.ok()) delivered.fetch_add(1);
  });
  remote->Prefetch("slow/x");
  gated.WaitEntered(); // the speculative Get is now parked server-side

  std::thread demand([&] {
    auto got = remote->Get("slow/x");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), (Bytes{5, 6, 7}));
  });
  // Give the demand thread time to reach the join point, then open the
  // gate: both the sink delivery and the joiner resolve off one RPC.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gated.Release();
  demand.join();

  const NetCounters counters = remote->counters();
  EXPECT_EQ(counters.prefetch_joined, 1u);
  EXPECT_EQ(delivered.load(), 1);
  std::uint64_t gets = 0;
  const ServerStats stats = remote->Stats().value();
  for (const RpcOpStats& op : stats.per_op) {
    if (op.rpc == static_cast<std::uint8_t>(Rpc::kGet)) gets = op.count;
  }
  EXPECT_EQ(gets, 1u) << "demand read duplicated the speculative Get";
}

// MultiGet whose bodies overflow the server's response budget: the
// deferred tail is re-fetched in follow-up BATCHES, not one Get per name.
TEST(NetReactorBatch, DeferredMultiGetEntriesRefetchInBatches) {
  storage::MemBackend store;
  auto server = NexusdServer::Start(store).value();
  auto remote =
      RemoteBackend::Connect("127.0.0.1", server->port(), FastOptions())
          .value();

  // Five 14 MiB objects: the first response packs four (56 MiB < 64 MiB
  // budget) and defers the fifth, which one follow-up batch resolves.
  constexpr std::size_t kBody = 14u << 20;
  std::vector<std::string> names;
  for (int i = 0; i < 5; ++i) {
    const std::string name = "big/" + std::to_string(i);
    ASSERT_TRUE(
        remote->Put(name, Bytes(kBody, static_cast<std::uint8_t>(i + 1))).ok());
    names.push_back(name);
  }

  const auto results = remote->MultiGet(names);
  ASSERT_EQ(results.size(), names.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << names[i];
    EXPECT_EQ(results[i].value().size(), kBody);
    EXPECT_EQ(results[i].value()[0], static_cast<std::uint8_t>(i + 1));
  }

  std::uint64_t multigets = 0, singles = 0;
  const ServerStats stats = remote->Stats().value();
  for (const RpcOpStats& op : stats.per_op) {
    if (op.rpc == static_cast<std::uint8_t>(Rpc::kMultiGet)) {
      multigets = op.count;
    }
    if (op.rpc == static_cast<std::uint8_t>(Rpc::kGet)) singles = op.count;
  }
  EXPECT_EQ(multigets, 2u) << "deferred tail did not batch";
  EXPECT_EQ(singles, 0u) << "deferred tail fell back to single Gets";
}

} // namespace
} // namespace nexus::net
