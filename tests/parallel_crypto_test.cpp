// Parallel chunk-crypto engine: the multi-threaded data path must be
// byte-for-byte indistinguishable from the serial one — same filenodes,
// same ciphertext, same object names — for a fixed world seed, across
// chunk-count shapes. Plus the AES-NI dispatch-verification satellite and
// a multithreaded stress run (TSan-clean under the sanitizer CI job).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "crypto/aesni.hpp"
#include "crypto/gcm.hpp"
#include "test_env.hpp"

namespace nexus {
namespace {

constexpr std::uint32_t kChunk = 4096; // small chunks keep the sweep fast

Bytes Pattern(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xFF);
  }
  return b;
}

/// Every object on a world's store, by name — the attacker-visible state.
std::map<std::string, Bytes> ServerState(test::World& world,
                                         test::Machine& machine) {
  std::map<std::string, Bytes> state;
  const std::vector<std::string> names = machine.afs->List("").value();
  for (const std::string& name : names) {
    state[name] = world.server().AdversaryRead(name).value();
  }
  return state;
}

/// One world writing `sizes`-shaped files with the given worker count.
struct Deployment {
  explicit Deployment(std::size_t workers)
      : world("parallel-identity"), machine(&world.AddMachine("alice")) {
    enclave::VolumeConfig config;
    config.chunk_size = kChunk;
    auto handle = machine->nexus->CreateVolume(machine->user, config);
    EXPECT_TRUE(handle.ok());
    EXPECT_TRUE(machine->nexus->SetCryptoWorkers(workers).ok());
  }
  test::World world;
  test::Machine* machine;
};

// Chunk-count shapes: empty, exactly one, several, many, short tail.
const std::size_t kSizes[] = {0, kChunk, 7 * kChunk, 64 * kChunk,
                              5 * kChunk + 1234};

TEST(ParallelCryptoTest, SerialAndParallelProduceIdenticalServerState) {
  Deployment serial(0);
  Deployment parallel(4);

  for (std::size_t size : kSizes) {
    const std::string path = "f" + std::to_string(size);
    const Bytes content = Pattern(size, 7);
    ASSERT_TRUE(serial.machine->nexus->WriteFile(path, content).ok());
    ASSERT_TRUE(parallel.machine->nexus->WriteFile(path, content).ok());
    EXPECT_EQ(serial.machine->nexus->ReadFile(path).value(), content);
    EXPECT_EQ(parallel.machine->nexus->ReadFile(path).value(), content);
  }

  const auto a = ServerState(serial.world, *serial.machine);
  const auto b = ServerState(parallel.world, *parallel.machine);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, bytes] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << "object missing in parallel world: " << name;
    EXPECT_EQ(bytes, it->second) << "ciphertext diverged: " << name;
  }

  // The parallel run actually went through the engine.
  const auto profile = parallel.machine->nexus->Profile();
  EXPECT_GT(profile.parallel.chunks_encrypted, 0u);
  EXPECT_GT(profile.parallel.parallel_batches, 0u);
  EXPECT_GT(profile.parallel.segments_streamed, 0u);
}

TEST(ParallelCryptoTest, PartialRangeUpdatesStayByteIdentical) {
  Deployment serial(0);
  Deployment parallel(2);

  const Bytes initial = Pattern(10 * kChunk, 1);
  for (auto* d : {&serial, &parallel}) {
    ASSERT_TRUE(d->machine->nexus->WriteFile("f", initial).ok());
  }

  // Dirty two interior chunks; the rest must survive as spliced ciphertext.
  Bytes updated = initial;
  for (std::size_t i = 3 * kChunk; i < 5 * kChunk; ++i) updated[i] ^= 0x5A;
  for (auto* d : {&serial, &parallel}) {
    ASSERT_TRUE(d->machine->nexus
                    ->WriteFileRange("f", updated, 3 * kChunk, 2 * kChunk)
                    .ok());
    EXPECT_EQ(d->machine->nexus->ReadFile("f").value(), updated);
  }

  EXPECT_EQ(ServerState(serial.world, *serial.machine),
            ServerState(parallel.world, *parallel.machine));
}

TEST(ParallelCryptoTest, ParallelDecryptDetectsTamperAndTruncation) {
  Deployment d(4);
  core::NexusClient& fs = *d.machine->nexus;
  ASSERT_TRUE(fs.WriteFile("f", Pattern(9 * kChunk + 100, 3)).ok());

  const auto names = d.machine->afs->List("nxd/").value();
  ASSERT_EQ(names.size(), 1u);
  Bytes blob = d.world.server().AdversaryRead(names[0]).value();

  // Flip one ciphertext byte in an interior chunk.
  Bytes tampered = blob;
  tampered[4 * (kChunk + crypto::kGcmTagSize) + 10] ^= 0x01;
  ASSERT_TRUE(d.world.server().AdversaryWrite(names[0], tampered).ok());
  fs.DropAllCaches();
  auto r = fs.ReadFile("f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);

  // Truncate the object below what the filenode's chunk table demands.
  Bytes truncated(blob.begin(), blob.begin() + blob.size() / 2);
  ASSERT_TRUE(d.world.server().AdversaryWrite(names[0], truncated).ok());
  fs.DropAllCaches();
  r = fs.ReadFile("f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);

  // Restore → readable again (the checks above were the detector, not
  // cached failure state).
  ASSERT_TRUE(d.world.server().AdversaryWrite(names[0], blob).ok());
  fs.DropAllCaches();
  EXPECT_TRUE(fs.ReadFile("f").ok());
}

TEST(ParallelCryptoTest, WorkerCountIsReconfigurableMidVolume) {
  Deployment d(0);
  core::NexusClient& fs = *d.machine->nexus;
  const Bytes content = Pattern(6 * kChunk, 9);
  ASSERT_TRUE(fs.WriteFile("f", content).ok());
  for (std::size_t workers : {1u, 4u, 0u, 2u}) {
    ASSERT_TRUE(fs.SetCryptoWorkers(workers).ok());
    EXPECT_EQ(fs.ReadFile("f").value(), content);
    ASSERT_TRUE(fs.WriteFile("f", content).ok());
  }
  EXPECT_FALSE(fs.SetCryptoWorkers(65).ok());
}

// Two full deployments hammering encrypt/decrypt concurrently: exercises
// the pool, the pipelined ocall path and the AES-NI dispatch under TSan.
TEST(ParallelCryptoStressTest, ConcurrentWorldsStayConsistent) {
  auto run = [](const char* user, std::uint8_t salt) {
    test::World world(std::string("stress-") + user);
    test::Machine& m = world.AddMachine(user);
    enclave::VolumeConfig config;
    config.chunk_size = kChunk;
    ASSERT_TRUE(m.nexus->CreateVolume(m.user, config).ok());
    ASSERT_TRUE(m.nexus->SetCryptoWorkers(4).ok());
    for (int round = 0; round < 8; ++round) {
      const Bytes content =
          Pattern((round + 1) * kChunk + round * 17, salt);
      ASSERT_TRUE(m.nexus->WriteFile("f", content).ok());
      m.nexus->DropAllCaches();
      ASSERT_EQ(m.nexus->ReadFile("f").value(), content);
    }
  };
  std::thread t1([&] { run("alice", 11); });
  std::thread t2([&] { run("bob", 23); });
  t1.join();
  t2.join();
}

// ---- AES-NI dispatch verification (satellite) -------------------------------

TEST(AesniDispatchTest, SelfTestPassesOnThisHost) {
  // Whatever the host supports, the KAT itself must be self-consistent:
  // it compares the accelerated kernels against the portable reference,
  // so it can only fail if dispatch picked a miscomputing path.
  EXPECT_TRUE(crypto::AesniSelfTest());
}

TEST(AesniDispatchTest, ForcedFallbackMatchesHardwarePath) {
  const ByteArray<16> key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                             11, 12, 13, 14, 15, 16};
  const ByteArray<12> iv = {9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 0};
  const Bytes aad = Pattern(23, 42);
  const Bytes plaintext = Pattern(70000, 5); // multi-block + tail

  auto seal = [&]() {
    auto aes = crypto::Aes::Create(key);
    EXPECT_TRUE(aes.ok());
    return crypto::GcmSeal(*aes, iv, aad, plaintext).value();
  };

  const bool hw_before = crypto::HasAesHardware();
  const Bytes with_dispatch = seal();
  crypto::ForceAesFallbackForTesting(true);
  EXPECT_FALSE(crypto::HasAesHardware());
  const Bytes with_fallback = seal();
  crypto::ForceAesFallbackForTesting(false);
  EXPECT_EQ(crypto::HasAesHardware(), hw_before);

  // AES-GCM is deterministic: accelerated and portable kernels must agree
  // bit-for-bit or the dispatch is broken.
  EXPECT_EQ(with_dispatch, with_fallback);

  // And the fallback ciphertext opens under the (possibly accelerated)
  // dispatch path.
  auto aes = crypto::Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(crypto::GcmOpen(*aes, iv, aad, with_fallback).value(), plaintext);
}

} // namespace
} // namespace nexus
