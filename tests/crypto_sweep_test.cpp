// Broad parameterized sweeps and robustness tests for the crypto layer:
// portable-vs-hardware GHASH equivalence, AEAD round trips across many
// lengths, and fuzz-ish inputs into every deserializer (hostile bytes must
// produce errors, never crashes or huge allocations).
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/aesni.hpp"
#include "crypto/gcm.hpp"
#include "crypto/gcm_siv.hpp"
#include "crypto/rng.hpp"
#include "enclave/metadata.hpp"
#include "enclave/metadata_codec.hpp"
#include "sgx/attestation.hpp"

namespace nexus::crypto {
namespace {

TEST(GhashEquivalence, PortableAndPclmulAgree) {
  if (!HasAesHardware()) GTEST_SKIP() << "no PCLMUL on this machine";
  HmacDrbg rng(AsBytes("ghash-eq"));
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = rng.Array<16>();
    const Bytes data = rng.Generate(1 + rng.Below(512));

    Ghash fast(h.data());
    Ghash slow(h.data(), /*force_portable=*/true);
    fast.Update(data);
    slow.Update(data);
    std::uint8_t out_fast[16], out_slow[16];
    fast.FinishLengths(0, data.size(), out_fast);
    slow.FinishLengths(0, data.size(), out_slow);
    EXPECT_EQ(Bytes(out_fast, out_fast + 16), Bytes(out_slow, out_slow + 16))
        << "trial " << trial << " len " << data.size();
  }
}

class GcmLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmLengthSweep, RoundTripEveryLength) {
  const std::size_t len = GetParam();
  HmacDrbg rng(AsBytes("gcm-sweep"));
  const auto aes = Aes::Create(rng.Generate(16)).value();
  const Bytes iv = rng.Generate(12);
  const Bytes aad = rng.Generate(len % 48);
  const Bytes pt = rng.Generate(len);

  const Bytes sealed = GcmSeal(aes, iv, aad, pt).value();
  EXPECT_EQ(sealed.size(), len + kGcmTagSize);
  EXPECT_EQ(GcmOpen(aes, iv, aad, sealed).value(), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, GcmLengthSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 47,
                                           48, 63, 64, 65, 127, 128, 129, 255,
                                           256, 1000, 4096, 65537));

class GcmSivLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmSivLengthSweep, RoundTripEveryLength) {
  const std::size_t len = GetParam();
  HmacDrbg rng(AsBytes("siv-sweep"));
  const Bytes key = rng.Generate(len % 2 == 0 ? 16 : 32);
  const Bytes nonce = rng.Generate(12);
  const Bytes aad = rng.Generate((len * 7) % 33);
  const Bytes pt = rng.Generate(len);

  const Bytes sealed = GcmSivSeal(key, nonce, aad, pt).value();
  EXPECT_EQ(GcmSivOpen(key, nonce, aad, sealed).value(), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, GcmSivLengthSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 32, 33, 100, 255,
                                           256, 1000, 5000));

// ---- hostile-input robustness ---------------------------------------------------
// Deserializers run on attacker bytes inside the enclave: any input must
// yield a clean error. We fuzz with (a) random bytes, (b) truncations of
// valid encodings, (c) single-byte corruptions of valid encodings.

template <typename ParseFn>
void FuzzParser(const Bytes& valid, ParseFn parse, const char* what) {
  HmacDrbg rng(Concat(AsBytes("fuzz-"), AsBytes(what)));
  // Random garbage of assorted sizes.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{64},
        valid.size(), valid.size() * 2}) {
    const Bytes junk = rng.Generate(len);
    (void)parse(junk); // must not crash / OOM
  }
  // Truncations.
  for (std::size_t cut = 0; cut < valid.size(); cut += 1 + valid.size() / 37) {
    (void)parse(ByteSpan(valid.data(), cut));
  }
  // Bit flips.
  for (std::size_t i = 0; i < valid.size(); i += 1 + valid.size() / 53) {
    Bytes mutated = valid;
    mutated[i] ^= 0xff;
    (void)parse(mutated);
  }
  SUCCEED();
}

TEST(HostileInput, QuoteDeserialize) {
  sgx::IntelAttestationService intel(AsBytes("intel"));
  auto cpu = intel.ProvisionCpu(AsBytes("cpu"));
  const sgx::Quote quote =
      cpu->GenerateQuote(sgx::NexusEnclaveImage().measurement(), {});
  FuzzParser(quote.Serialize(),
             [](ByteSpan b) { return sgx::Quote::Deserialize(b).ok(); },
             "quote");
}

TEST(HostileInput, SupernodeDeserialize) {
  HmacDrbg rng(AsBytes("sn"));
  enclave::Supernode sn;
  sn.volume_uuid = rng.NewUuid();
  sn.root_dir = rng.NewUuid();
  sn.users.push_back({0, "owner", rng.Array<32>()});
  sn.users.push_back({1, "alice", rng.Array<32>()});
  FuzzParser(sn.Serialize(),
             [](ByteSpan b) { return enclave::Supernode::Deserialize(b).ok(); },
             "supernode");
}

TEST(HostileInput, DirnodeAndBucketDeserialize) {
  HmacDrbg rng(AsBytes("dn"));
  enclave::Dirnode d;
  d.uuid = rng.NewUuid();
  d.parent = rng.NewUuid();
  d.SetAcl(1, enclave::kPermRead);
  d.buckets.push_back({rng.NewUuid(), 2, rng.Array<32>()});
  FuzzParser(d.Serialize(),
             [](ByteSpan b) { return enclave::Dirnode::Deserialize(b).ok(); },
             "dirnode");

  enclave::DirBucket bucket;
  bucket.entries.push_back({"a", rng.NewUuid(), enclave::EntryType::kFile, ""});
  bucket.entries.push_back(
      {"s", Uuid(), enclave::EntryType::kSymlink, "target"});
  const Uuid owner = d.uuid;
  FuzzParser(bucket.Serialize(owner),
             [owner](ByteSpan b) {
               return enclave::DirBucket::Deserialize(b, owner).ok();
             },
             "bucket");
}

TEST(HostileInput, FilenodeDeserialize) {
  HmacDrbg rng(AsBytes("fn"));
  enclave::Filenode f;
  f.uuid = rng.NewUuid();
  f.parent = rng.NewUuid();
  f.data_uuid = rng.NewUuid();
  f.chunk_size = 4096;
  f.size = 10000;
  for (int i = 0; i < 3; ++i) {
    f.chunks.push_back({rng.Array<16>(), rng.Array<12>()});
  }
  FuzzParser(f.Serialize(),
             [](ByteSpan b) { return enclave::Filenode::Deserialize(b).ok(); },
             "filenode");
}

TEST(HostileInput, MetadataBlobDecode) {
  HmacDrbg rng(AsBytes("blob"));
  const enclave::RootKey rootkey{1, 2, 3};
  const enclave::Preamble p{enclave::MetaType::kFilenode, rng.NewUuid(), 1};
  const Bytes blob =
      enclave::EncodeMetadata(p, rng.Generate(200), rootkey, rng).value();
  FuzzParser(blob,
             [&](ByteSpan b) {
               return enclave::DecodeMetadata(b, rootkey,
                                              enclave::MetaType::kFilenode,
                                              p.uuid)
                   .ok();
             },
             "metadata-blob");
}

TEST(HostileInput, GcmOpenNeverCrashes) {
  HmacDrbg rng(AsBytes("open"));
  const auto aes = Aes::Create(rng.Generate(16)).value();
  const Bytes iv = rng.Generate(12);
  for (const std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u}) {
    EXPECT_FALSE(GcmOpen(aes, iv, {}, rng.Generate(len)).ok());
  }
  // Wrong IV length.
  EXPECT_FALSE(GcmOpen(aes, rng.Generate(11), {}, rng.Generate(32)).ok());
  EXPECT_FALSE(GcmSivOpen(rng.Generate(16), rng.Generate(13), {},
                          rng.Generate(32))
                   .ok());
}

} // namespace
} // namespace nexus::crypto
