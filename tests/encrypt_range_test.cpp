// Property sweep of the chunk-granular re-encryption path
// (EcallEncryptRange): for every (file size, dirty range) combination the
// result must decrypt to exactly the new content, and only the affected
// chunks may be re-keyed / shipped.
#include <gtest/gtest.h>

#include "test_env.hpp"

namespace nexus {
namespace {

constexpr std::uint32_t kChunk = 4096; // small chunks => many boundaries

struct RangeCase {
  std::size_t initial_size;
  std::size_t new_size;
  std::size_t dirty_offset;
  std::size_t dirty_len;
};

std::string CaseName(const ::testing::TestParamInfo<RangeCase>& info) {
  const auto& p = info.param;
  return "init" + std::to_string(p.initial_size) + "_new" +
         std::to_string(p.new_size) + "_off" + std::to_string(p.dirty_offset) +
         "_len" + std::to_string(p.dirty_len);
}

class EncryptRangeTest : public ::testing::TestWithParam<RangeCase> {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    enclave::VolumeConfig config;
    config.chunk_size = kChunk;
    auto handle = machine_->nexus->CreateVolume(machine_->user, config);
    ASSERT_TRUE(handle.ok());
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
};

TEST_P(EncryptRangeTest, RoundTripsAndShipsOnlyDirtyChunks) {
  const RangeCase& p = GetParam();
  auto& nexus = *machine_->nexus;
  crypto::HmacDrbg rng(AsBytes("range"));

  const Bytes initial = rng.Generate(p.initial_size);
  ASSERT_TRUE(nexus.WriteFile("f", initial).ok());

  // Build new content: resize, then overwrite the dirty window.
  Bytes updated = initial;
  updated.resize(p.new_size, 0x5a);
  const std::size_t effective_len =
      p.dirty_offset < updated.size()
          ? std::min(p.dirty_len, updated.size() - p.dirty_offset)
          : 0;
  for (std::size_t i = 0; i < effective_len; ++i) {
    updated[p.dirty_offset + i] = static_cast<std::uint8_t>(i * 31 + 7);
  }

  const auto stores_before = machine_->afs->stats().bytes_stored;
  ASSERT_TRUE(
      nexus.WriteFileRange("f", updated, p.dirty_offset, effective_len).ok());
  const auto shipped = machine_->afs->stats().bytes_stored - stores_before;

  // Exact content round trip — warm and cold.
  EXPECT_EQ(nexus.ReadFile("f").value(), updated);
  nexus.DropAllCaches();
  EXPECT_EQ(nexus.ReadFile("f").value(), updated);

  // Upper bound on shipped data: dirty chunks + tags + metadata. The dirty
  // region spans at most (len/chunk + 2) chunks; size changes add the tail.
  const std::size_t chunk_ct = kChunk + 16;
  const std::size_t dirty_chunks = effective_len / kChunk + 2;
  const std::size_t tail_chunks =
      p.new_size != p.initial_size
          ? (std::max(p.new_size, p.initial_size) -
             std::min(p.new_size, p.initial_size)) /
                    kChunk +
                2
          : 0;
  const std::size_t metadata_allowance = 4096 + 44 * (p.new_size / kChunk + 2);
  EXPECT_LE(shipped,
            (dirty_chunks + tail_chunks) * chunk_ct + metadata_allowance)
      << "partial update shipped too much data";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncryptRangeTest,
    ::testing::Values(
        // In-place updates, same size.
        RangeCase{4 * kChunk, 4 * kChunk, 0, 10},             // first chunk
        RangeCase{4 * kChunk, 4 * kChunk, kChunk, 1},         // exact boundary
        RangeCase{4 * kChunk, 4 * kChunk, kChunk - 1, 2},     // straddles
        RangeCase{4 * kChunk, 4 * kChunk, 3 * kChunk, kChunk}, // last chunk
        RangeCase{4 * kChunk, 4 * kChunk, 0, 4 * kChunk},     // everything
        // Growth.
        RangeCase{0, 3 * kChunk, 0, 3 * kChunk},              // from empty
        RangeCase{kChunk / 2, kChunk / 2 + 10, kChunk / 2, 10}, // append small
        RangeCase{2 * kChunk, 5 * kChunk, 2 * kChunk, 3 * kChunk}, // append chunks
        RangeCase{2 * kChunk + 7, 4 * kChunk + 3, 2 * kChunk + 7,
                  2 * kChunk - 4},                            // unaligned growth
        // Shrink.
        RangeCase{4 * kChunk, 2 * kChunk, 0, 0},              // truncate only
        RangeCase{4 * kChunk, kChunk + 5, 100, 50},           // shrink + dirty
        RangeCase{3 * kChunk, 0, 0, 0},                       // truncate to zero
        // Odd sizes.
        RangeCase{kChunk + 1, kChunk + 1, kChunk, 1},
        RangeCase{10, 10, 0, 10}),
    CaseName);

TEST_F(EncryptRangeTest, RepeatedAppendsStayConsistent) {
  auto& nexus = *machine_->nexus;
  Bytes content;
  crypto::HmacDrbg rng(AsBytes("appends"));
  ASSERT_TRUE(nexus.WriteFile("log", content).ok());
  for (int i = 0; i < 40; ++i) {
    const Bytes chunk = rng.Generate(1 + static_cast<std::size_t>(rng.Below(3000)));
    const std::size_t offset = content.size();
    Append(content, chunk);
    ASSERT_TRUE(
        nexus.WriteFileRange("log", content, offset, chunk.size()).ok())
        << i;
  }
  EXPECT_EQ(nexus.ReadFile("log").value(), content);
  machine_->nexus->DropAllCaches();
  EXPECT_EQ(nexus.ReadFile("log").value(), content);
}

TEST_F(EncryptRangeTest, UntouchedChunksKeepKeysDirtyChunksGetFreshOnes) {
  auto& nexus = *machine_->nexus;
  const Bytes content(4 * kChunk, 0x11);
  ASSERT_TRUE(nexus.WriteFile("f", content).ok());
  const auto uuid = nexus.Lookup("f")->uuid;
  // Snapshot the data object, update one chunk, compare ciphertext.
  const std::string data_obj = [&] {
    // Data objects live under nxd/; there is exactly one file.
    return "nxd";
  }();
  auto names = machine_->afs->List("nxd/").value();
  ASSERT_EQ(names.size(), 1u);
  const Bytes before = world_.server().AdversaryRead(names[0]).value();

  Bytes updated = content;
  updated[2 * kChunk + 5] = 0x99;
  ASSERT_TRUE(nexus.WriteFileRange("f", updated, 2 * kChunk + 5, 1).ok());
  const Bytes after = world_.server().AdversaryRead(names[0]).value();

  ASSERT_EQ(before.size(), after.size());
  const std::size_t stride = kChunk + 16;
  // Chunks 0, 1, 3 byte-identical (keys kept); chunk 2 fully re-encrypted.
  EXPECT_TRUE(std::equal(before.begin(), before.begin() + 2 * stride, after.begin()));
  EXPECT_TRUE(std::equal(before.begin() + 3 * stride, before.end(),
                         after.begin() + 3 * stride));
  bool chunk2_differs = !std::equal(before.begin() + 2 * stride,
                                    before.begin() + 3 * stride,
                                    after.begin() + 2 * stride);
  EXPECT_TRUE(chunk2_differs);
  (void)uuid;
  (void)data_obj;
}

} // namespace
} // namespace nexus
