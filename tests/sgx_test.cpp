// SGX simulator tests: measurement, sealing policy, quotes and forgeries.
#include <gtest/gtest.h>

#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "sgx/measurement.hpp"

namespace nexus::sgx {
namespace {

TEST(Measurement, DeterministicAcrossLoads) {
  const EnclaveImage a("nexus-enclave", 1, "build-x");
  const EnclaveImage b("nexus-enclave", 1, "build-x");
  EXPECT_EQ(a.measurement(), b.measurement());
}

TEST(Measurement, SensitiveToIdentity) {
  const EnclaveImage base("nexus-enclave", 1, "build-x");
  EXPECT_NE(base.measurement(), EnclaveImage("other", 1, "build-x").measurement());
  EXPECT_NE(base.measurement(), EnclaveImage("nexus-enclave", 2, "build-x").measurement());
  EXPECT_NE(base.measurement(), EnclaveImage("nexus-enclave", 1, "build-y").measurement());
}

class SealingTest : public ::testing::Test {
 protected:
  IntelAttestationService intel_{AsBytes("intel")};
  std::unique_ptr<SgxCpu> cpu_a_ = intel_.ProvisionCpu(AsBytes("cpu-a"));
  std::unique_ptr<SgxCpu> cpu_b_ = intel_.ProvisionCpu(AsBytes("cpu-b"));
};

TEST_F(SealingTest, RoundTripOnSameCpuAndEnclave) {
  EnclaveRuntime rt(*cpu_a_, NexusEnclaveImage(), AsBytes("seed"));
  const Bytes secret = ToBytes(std::string_view("rootkey-material"));
  auto sealed = rt.Seal(secret);
  ASSERT_TRUE(sealed.ok());
  EXPECT_NE(*sealed, secret); // actually encrypted
  auto unsealed = rt.Unseal(*sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(*unsealed, secret);
}

TEST_F(SealingTest, SealedBlobIsMachineBound) {
  EnclaveRuntime rt_a(*cpu_a_, NexusEnclaveImage(), AsBytes("seed-a"));
  EnclaveRuntime rt_b(*cpu_b_, NexusEnclaveImage(), AsBytes("seed-b"));
  auto sealed = rt_a.Seal(ToBytes(std::string_view("secret"))).value();
  auto result = rt_b.Unseal(sealed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kIntegrityViolation);
}

TEST_F(SealingTest, SealedBlobIsEnclaveBound) {
  const EnclaveImage other("malicious-enclave", 1, "evil");
  EnclaveRuntime rt_good(*cpu_a_, NexusEnclaveImage(), AsBytes("s"));
  EnclaveRuntime rt_evil(*cpu_a_, other, AsBytes("s"));
  auto sealed = rt_good.Seal(ToBytes(std::string_view("secret"))).value();
  EXPECT_FALSE(rt_evil.Unseal(sealed).ok());
}

TEST_F(SealingTest, TamperedBlobRejected) {
  EnclaveRuntime rt(*cpu_a_, NexusEnclaveImage(), AsBytes("seed"));
  auto sealed = rt.Seal(ToBytes(std::string_view("secret"))).value();
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(rt.Unseal(sealed).ok());
}

TEST_F(SealingTest, SameEnclaveNewInstanceUnseals) {
  // Persistence across enclave restarts on the same machine.
  Bytes sealed;
  {
    EnclaveRuntime rt(*cpu_a_, NexusEnclaveImage(), AsBytes("run-1"));
    sealed = rt.Seal(ToBytes(std::string_view("persistent"))).value();
  }
  EnclaveRuntime rt2(*cpu_a_, NexusEnclaveImage(), AsBytes("run-2"));
  EXPECT_EQ(rt2.Unseal(sealed).value(), ToBytes(std::string_view("persistent")));
}


TEST_F(SealingTest, MrSignerPolicySurvivesEnclaveUpgrade) {
  // Sealed state migration across versions: v2 of the enclave (different
  // MRENCLAVE, same vendor signer) can unseal MRSIGNER-policy blobs.
  const EnclaveImage v1("nexus-enclave", 1, "build-1", "acme");
  const EnclaveImage v2("nexus-enclave", 2, "build-2", "acme");
  ASSERT_NE(v1.measurement(), v2.measurement());
  ASSERT_EQ(v1.signer_measurement(), v2.signer_measurement());

  EnclaveRuntime rt_v1(*cpu_a_, v1, AsBytes("s1"));
  EnclaveRuntime rt_v2(*cpu_a_, v2, AsBytes("s2"));
  const Bytes secret = ToBytes(std::string_view("rootkey"));

  const Bytes signer_sealed =
      rt_v1.Seal(secret, SgxCpu::SealPolicy::kMrSigner).value();
  EXPECT_EQ(rt_v2.Unseal(signer_sealed).value(), secret);

  // ...while MRENCLAVE-policy blobs stay version-bound.
  const Bytes enclave_sealed =
      rt_v1.Seal(secret, SgxCpu::SealPolicy::kMrEnclave).value();
  EXPECT_FALSE(rt_v2.Unseal(enclave_sealed).ok());
  EXPECT_EQ(rt_v1.Unseal(enclave_sealed).value(), secret);
}

TEST_F(SealingTest, MrSignerPolicyRejectsOtherVendor) {
  const EnclaveImage acme("app", 1, "b", "acme");
  const EnclaveImage evil("app", 1, "b-evil", "evilcorp");
  EnclaveRuntime rt_acme(*cpu_a_, acme, AsBytes("s"));
  EnclaveRuntime rt_evil(*cpu_a_, evil, AsBytes("s"));
  const Bytes sealed =
      rt_acme.Seal(ToBytes(std::string_view("x")), SgxCpu::SealPolicy::kMrSigner)
          .value();
  EXPECT_FALSE(rt_evil.Unseal(sealed).ok());
}

TEST_F(SealingTest, MrSignerPolicyStillMachineBound) {
  const EnclaveImage img("app", 1, "b", "acme");
  EnclaveRuntime rt_a(*cpu_a_, img, AsBytes("s"));
  EnclaveRuntime rt_b(*cpu_b_, img, AsBytes("s"));
  const Bytes sealed =
      rt_a.Seal(ToBytes(std::string_view("x")), SgxCpu::SealPolicy::kMrSigner)
          .value();
  EXPECT_FALSE(rt_b.Unseal(sealed).ok());
}

TEST_F(SealingTest, PolicyByteIsAuthenticated) {
  // Flipping the policy byte must not redirect to a different (valid) key.
  EnclaveRuntime rt(*cpu_a_, NexusEnclaveImage(), AsBytes("s"));
  Bytes sealed = rt.Seal(ToBytes(std::string_view("x"))).value();
  sealed[0] ^= 1;
  EXPECT_FALSE(rt.Unseal(sealed).ok());
  sealed[0] = 7; // out-of-range policy
  EXPECT_FALSE(rt.Unseal(sealed).ok());
}

class QuoteTest : public ::testing::Test {
 protected:
  IntelAttestationService intel_{AsBytes("intel")};
  std::unique_ptr<SgxCpu> cpu_ = intel_.ProvisionCpu(AsBytes("cpu"));
  Measurement nexus_m_ = NexusEnclaveImage().measurement();
};

TEST_F(QuoteTest, ValidQuoteVerifies) {
  EnclaveRuntime rt(*cpu_, NexusEnclaveImage(), AsBytes("s"));
  ByteArray<kReportDataSize> report{};
  report[0] = 42;
  const Quote quote = rt.CreateQuote(report);
  EXPECT_TRUE(VerifyQuote(quote, intel_.root_public_key(), nexus_m_).ok());
}

TEST_F(QuoteTest, SerializationRoundTrip) {
  EnclaveRuntime rt(*cpu_, NexusEnclaveImage(), AsBytes("s"));
  const Quote quote = rt.CreateQuote(ByteArray<kReportDataSize>{1, 2, 3});
  auto parsed = Quote::Deserialize(quote.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(VerifyQuote(*parsed, intel_.root_public_key(), nexus_m_).ok());
  // Truncated and padded forms must be rejected.
  Bytes raw = quote.Serialize();
  EXPECT_FALSE(Quote::Deserialize(ByteSpan(raw.data(), raw.size() - 1)).ok());
  raw.push_back(0);
  EXPECT_FALSE(Quote::Deserialize(raw).ok());
}

TEST_F(QuoteTest, WrongMeasurementRejected) {
  const EnclaveImage evil("evil-enclave", 1, "x");
  EnclaveRuntime rt(*cpu_, evil, AsBytes("s"));
  const Quote quote = rt.CreateQuote(ByteArray<kReportDataSize>{});
  const Status s = VerifyQuote(quote, intel_.root_public_key(), nexus_m_);
  EXPECT_FALSE(s.ok());
}

TEST_F(QuoteTest, TamperedReportDataRejected) {
  EnclaveRuntime rt(*cpu_, NexusEnclaveImage(), AsBytes("s"));
  Quote quote = rt.CreateQuote(ByteArray<kReportDataSize>{9});
  quote.report_data[0] = 10; // attacker swaps the bound key
  EXPECT_FALSE(VerifyQuote(quote, intel_.root_public_key(), nexus_m_).ok());
}

TEST_F(QuoteTest, ForgedTrustChainRejected) {
  // A CPU provisioned by a *different* root ("fake Intel") must not verify
  // against the genuine root key.
  IntelAttestationService fake_intel(AsBytes("fake-intel"));
  auto fake_cpu = fake_intel.ProvisionCpu(AsBytes("fake-cpu"));
  EnclaveRuntime rt(*fake_cpu, NexusEnclaveImage(), AsBytes("s"));
  const Quote quote = rt.CreateQuote(ByteArray<kReportDataSize>{});
  EXPECT_FALSE(VerifyQuote(quote, intel_.root_public_key(), nexus_m_).ok());
  // ... while verifying fine against its own root.
  EXPECT_TRUE(VerifyQuote(quote, fake_intel.root_public_key(), nexus_m_).ok());
}

TEST(EnclaveRuntime, TransitionCounting) {
  IntelAttestationService intel(AsBytes("intel"));
  auto cpu = intel.ProvisionCpu(AsBytes("cpu"));
  EnclaveRuntime rt(*cpu, NexusEnclaveImage(), AsBytes("s"));
  EXPECT_EQ(rt.ecall_count(), 0u);
  {
    EnclaveRuntime::EcallScope ecall(rt);
    EXPECT_TRUE(rt.inside());
    {
      EnclaveRuntime::OcallScope ocall(rt);
      EXPECT_FALSE(rt.inside()); // execution left the enclave
    }
    EXPECT_TRUE(rt.inside());
  }
  EXPECT_FALSE(rt.inside());
  EXPECT_EQ(rt.ecall_count(), 1u);
  EXPECT_EQ(rt.ocall_count(), 1u);
}

} // namespace
} // namespace nexus::sgx
