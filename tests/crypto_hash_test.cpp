// Known-answer and property tests for SHA-256, SHA-512, HMAC and HKDF.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace nexus::crypto {
namespace {

std::string HexOf(ByteSpan b) { return HexEncode(b); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(HexOf(Sha256::Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexOf(Sha256::Hash(AsBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HexOf(Sha256::Hash(AsBytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(AsBytes(chunk));
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  // Split at awkward boundaries.
  for (std::size_t split : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{500}}) {
    Sha256 h;
    h.Update(ByteSpan(data.data(), split));
    h.Update(ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(HexOf(h.Finish()), HexOf(Sha256::Hash(data))) << split;
  }
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(HexOf(Sha512::Hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(HexOf(Sha512::Hash(AsBytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha512::Hash(AsBytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
  Sha512 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(AsBytes(chunk));
  EXPECT_EQ(HexOf(h.Finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// RFC 4231 HMAC-SHA256 test cases.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, AsBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256(AsBytes("Jefe"),
                             AsBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(HexOf(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      HexOf(HmacSha256(
          key, AsBytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, StreamMatchesOneShot) {
  const Bytes key(32, 0x42);
  HmacSha256Stream mac(key);
  mac.Update(AsBytes("hello "));
  mac.Update(AsBytes("world"));
  EXPECT_EQ(HexOf(mac.Finish()), HexOf(HmacSha256(key, AsBytes("hello world"))));
}

// RFC 5869 HKDF test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = HexDecode("000102030405060708090a0b0c").value();
  const Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9").value();
  const auto prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexOf(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexOf(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (zero-length salt and info).
TEST(Hkdf, Rfc5869Case3) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(HexOf(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengths) {
  const Bytes prk(32, 0x07);
  for (std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(HkdfExpand(prk, AsBytes("ctx"), len).size(), len);
  }
  // Prefix property: a longer expansion starts with the shorter one.
  const Bytes a = HkdfExpand(prk, AsBytes("ctx"), 16);
  const Bytes b = HkdfExpand(prk, AsBytes("ctx"), 64);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

} // namespace
} // namespace nexus::crypto
