// Journal integration tests at the client level: group commit batches many
// operations into one record, checkpoints truncate the journal, a second
// session replays committed-but-uncheckpointed records at mount, and fsck
// surfaces the journal's state.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fsck.hpp"
#include "test_env.hpp"

namespace nexus {
namespace {

class JournalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok());
    handle_ = std::move(handle).value();
  }

  /// Journal record objects currently on the store (anchor excluded),
  /// as "a,b,c" so assertion failures name the leftovers.
  std::string RecordsOnStore() {
    std::string joined;
    const std::vector<std::string> names = machine_->afs->List("nxj/").value();
    for (const auto& name : names) {
      if (name == "nxj/anchor") continue;
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    return joined;
  }

  std::size_t RecordCount() {
    const std::string joined = RecordsOnStore();
    return joined.empty()
               ? 0
               : 1 + static_cast<std::size_t>(
                         std::count(joined.begin(), joined.end(), ','));
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

TEST_F(JournalRecoveryTest, PerOpCommitsCheckpointImmediately) {
  auto& nexus = *machine_->nexus;
  const auto before = nexus.Profile();
  ASSERT_TRUE(nexus.Mkdir("d").ok());
  ASSERT_TRUE(nexus.WriteFile("d/f", Bytes(100, 1)).ok());
  const auto delta = nexus.Profile() - before;

  // Default configuration: every operation is its own transaction and is
  // checkpointed as soon as it commits, so the journal stays truncated.
  EXPECT_GE(delta.journal.records_committed, 2u);
  EXPECT_EQ(delta.journal.checkpoints, delta.journal.records_committed);
  EXPECT_EQ(RecordsOnStore(), "");
  EXPECT_GT(delta.journal_io_seconds, 0.0);
}

TEST_F(JournalRecoveryTest, GroupCommitProducesOneRecordForTheWholeBatch) {
  auto& nexus = *machine_->nexus;
  // Large checkpoint interval keeps the committed record on the store so
  // we can observe it before any checkpoint applies it.
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());

  const auto before = nexus.Profile();
  ASSERT_TRUE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.Mkdir("batch").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        nexus.WriteFile("batch/f" + std::to_string(i), Bytes(64, 3)).ok());
  }
  ASSERT_TRUE(nexus.CommitBatch().ok());
  const auto delta = nexus.Profile() - before;

  EXPECT_EQ(delta.journal.records_committed, 1u);
  EXPECT_GT(delta.journal.ops_committed, 8u); // dirnode + bucket + filenodes
  EXPECT_EQ(delta.journal.checkpoints, 0u);
  EXPECT_EQ(RecordCount(), 1u) << RecordsOnStore();

  // The uncommitted-to-main state is fully readable through the journal
  // overlay, and a deep fsck sees a consistent volume plus the pending
  // record.
  EXPECT_EQ(nexus.ReadFile("batch/f3").value(), Bytes(64, 3));
  auto fsck = core::RunFsck(*machine_->nexus, /*deep=*/true);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  EXPECT_EQ(fsck->audit.files, 8u);
  EXPECT_TRUE(fsck->orphaned_objects.empty());
  EXPECT_EQ(fsck->uncheckpointed_records, 1u);

  // Unmount flushes: checkpoint applies the record and truncates.
  ASSERT_TRUE(nexus.Unmount().ok());
  EXPECT_EQ(RecordsOnStore(), "");
  ASSERT_TRUE(
      nexus.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  EXPECT_EQ(nexus.ReadFile("batch/f7").value(), Bytes(64, 3));
}

TEST_F(JournalRecoveryTest, BatchDedupCollapsesRepeatedMetadataStores) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());
  const auto before = nexus.Profile();
  ASSERT_TRUE(nexus.BeginBatch().ok());
  // Every create rewrites the same parent dirnode: without dedup the
  // record would hold one dirnode copy per file.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(nexus.Touch("f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(nexus.CommitBatch().ok());
  const auto delta = nexus.Profile() - before;
  EXPECT_GT(delta.journal.ops_deduped, 0u);
  // The record holds one op per distinct object, not one per store call.
  EXPECT_LT(delta.journal.ops_committed, 6u + delta.journal.ops_deduped);
}

TEST_F(JournalRecoveryTest, SecondSessionReplaysCommittedRecordsAtMount) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());
  ASSERT_TRUE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.Mkdir("d").ok());
  ASSERT_TRUE(nexus.WriteFile("d/replayed", Bytes(32, 9)).ok());
  ASSERT_TRUE(nexus.CommitBatch().ok());
  ASSERT_EQ(RecordCount(), 1u) << RecordsOnStore();
  // The first session now "dies" without unmounting (no checkpoint).

  machine_->afs->FlushCache();
  core::NexusClient second(*machine_->runtime, *machine_->afs,
                           world_.intel().root_public_key());
  ASSERT_TRUE(
      second.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  const auto profile = second.Profile();
  EXPECT_GE(profile.journal.records_replayed, 1u);
  EXPECT_GE(profile.journal.ops_replayed, 2u);
  EXPECT_EQ(second.ReadFile("d/replayed").value(), Bytes(32, 9));
  // Replay checkpointed the chain: the journal is truncated again.
  EXPECT_EQ(RecordsOnStore(), "");
  ASSERT_TRUE(second.Unmount().ok());
}

TEST_F(JournalRecoveryTest, RecoveryRunsEvenWithJournalingDisabled) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(true, 1 << 20).ok());
  ASSERT_TRUE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.WriteFile("precrash", Bytes(16, 4)).ok());
  ASSERT_TRUE(nexus.CommitBatch().ok());
  ASSERT_EQ(RecordCount(), 1u) << RecordsOnStore();

  machine_->afs->FlushCache();
  core::NexusClient second(*machine_->runtime, *machine_->afs,
                           world_.intel().root_public_key());
  // Journaling off for the new session — but the committed transaction on
  // the store must still be applied, or durable writes would be lost.
  ASSERT_TRUE(second.ConfigureJournal(false, 0).ok());
  ASSERT_TRUE(
      second.Mount(machine_->user, handle_.volume_uuid, handle_.sealed_rootkey)
          .ok());
  EXPECT_EQ(second.ReadFile("precrash").value(), Bytes(16, 4));
  EXPECT_EQ(RecordsOnStore(), "");

  // With journaling off, subsequent writes go straight to the main
  // objects: no new records, no commits.
  const auto before = second.Profile();
  ASSERT_TRUE(second.WriteFile("direct", Bytes(16, 5)).ok());
  const auto delta = second.Profile() - before;
  EXPECT_EQ(delta.journal.records_committed, 0u);
  EXPECT_EQ(RecordsOnStore(), "");
  ASSERT_TRUE(second.Unmount().ok());
}

TEST_F(JournalRecoveryTest, BatchRequiresJournalingEnabled) {
  auto& nexus = *machine_->nexus;
  ASSERT_TRUE(nexus.ConfigureJournal(false, 0).ok());
  EXPECT_FALSE(nexus.BeginBatch().ok());
  ASSERT_TRUE(nexus.ConfigureJournal(true, 0).ok());
  ASSERT_TRUE(nexus.BeginBatch().ok());
  EXPECT_FALSE(nexus.BeginBatch().ok()); // no nesting
  ASSERT_TRUE(nexus.CommitBatch().ok());
}

} // namespace
} // namespace nexus
