// Metadata structure serialization and the three-section encryption format.
#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "enclave/metadata.hpp"
#include "enclave/metadata_codec.hpp"

namespace nexus::enclave {
namespace {

crypto::HmacDrbg& Rng() {
  static crypto::HmacDrbg rng(AsBytes("metadata-test"));
  return rng;
}

RootKey TestRootkey() { return ByteArray<16>{1, 2, 3, 4, 5}; }

Uuid NewUuid() { return Rng().NewUuid(); }

// ---- structure round trips ---------------------------------------------------

TEST(Supernode, SerializationRoundTrip) {
  Supernode s;
  s.volume_uuid = NewUuid();
  s.root_dir = NewUuid();
  s.config.chunk_size = 1 << 20;
  s.config.dirnode_bucket_size = 128;
  s.next_user_id = 3;
  s.users.push_back(UserRecord{0, "owen", Rng().Array<32>()});
  s.users.push_back(UserRecord{2, "alice", Rng().Array<32>()});

  auto back = Supernode::Deserialize(s.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->volume_uuid, s.volume_uuid);
  EXPECT_EQ(back->root_dir, s.root_dir);
  EXPECT_EQ(back->next_user_id, 3u);
  ASSERT_EQ(back->users.size(), 2u);
  EXPECT_EQ(back->users[1].name, "alice");
  EXPECT_EQ(back->users[1].public_key, s.users[1].public_key);

  EXPECT_NE(back->FindUserByName("owen"), nullptr);
  EXPECT_EQ(back->FindUserByName("nobody"), nullptr);
  EXPECT_NE(back->FindUserByKey(s.users[1].public_key), nullptr);
  EXPECT_NE(back->FindUserById(2), nullptr);
  EXPECT_EQ(back->FindUserById(1), nullptr);
}

TEST(Supernode, RejectsTruncation) {
  Supernode s;
  s.volume_uuid = NewUuid();
  s.root_dir = NewUuid();
  s.users.push_back(UserRecord{0, "owen", Rng().Array<32>()});
  const Bytes body = s.Serialize();
  for (std::size_t cut : {body.size() - 1, body.size() / 2, std::size_t{3}}) {
    EXPECT_FALSE(Supernode::Deserialize(ByteSpan(body.data(), cut)).ok());
  }
}

TEST(Dirnode, SerializationAndAcl) {
  Dirnode d;
  d.uuid = NewUuid();
  d.parent = NewUuid();
  d.SetAcl(3, kPermRead);
  d.SetAcl(4, kPermRead | kPermWrite);
  BucketRef ref;
  ref.uuid = NewUuid();
  ref.entry_count = 7;
  ref.mac = crypto::HmacDrbg(AsBytes("m")).Array<32>();
  d.buckets.push_back(ref);

  auto back = Dirnode::Deserialize(d.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->parent, d.parent);
  ASSERT_EQ(back->buckets.size(), 1u);
  EXPECT_EQ(back->buckets[0].mac, ref.mac);
  EXPECT_EQ(back->TotalEntries(), 7u);
  ASSERT_NE(back->FindAcl(3), nullptr);
  EXPECT_EQ(back->FindAcl(3)->perms, kPermRead);
  EXPECT_EQ(back->FindAcl(99), nullptr);

  // ACL updates: overwrite and revoke.
  back->SetAcl(3, kPermRead | kPermWrite);
  EXPECT_EQ(back->FindAcl(3)->perms, kPermRead | kPermWrite);
  back->SetAcl(3, kPermNone);
  EXPECT_EQ(back->FindAcl(3), nullptr);
}

TEST(DirBucket, RoundTripAndOwnershipCheck) {
  const Uuid owner = NewUuid();
  DirBucket b;
  b.entries.push_back(DirEntry{"a.txt", NewUuid(), EntryType::kFile, ""});
  b.entries.push_back(DirEntry{"docs", NewUuid(), EntryType::kDirectory, ""});
  b.entries.push_back(DirEntry{"link", Uuid(), EntryType::kSymlink, "a.txt"});

  const Bytes body = b.Serialize(owner);
  auto back = DirBucket::Deserialize(body, owner);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[2].symlink_target, "a.txt");

  // A bucket presented under another dirnode is rejected.
  EXPECT_FALSE(DirBucket::Deserialize(body, NewUuid()).ok());
}

TEST(Filenode, RoundTripAndChunkConsistency) {
  Filenode f;
  f.uuid = NewUuid();
  f.parent = NewUuid();
  f.data_uuid = NewUuid();
  f.chunk_size = 1 << 20;
  f.size = (2 << 20) + 5; // 3 chunks
  f.link_count = 2;
  for (int i = 0; i < 3; ++i) {
    f.chunks.push_back(ChunkContext{Rng().Array<16>(), Rng().Array<12>()});
  }

  auto back = Filenode::Deserialize(f.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size, f.size);
  EXPECT_EQ(back->link_count, 2u);
  ASSERT_EQ(back->chunks.size(), 3u);
  EXPECT_EQ(back->chunks[1].key, f.chunks[1].key);

  // Chunk table size must match the file size.
  f.chunks.pop_back();
  EXPECT_FALSE(Filenode::Deserialize(f.Serialize()).ok());
}

TEST(Filenode, ChunkCountMath) {
  Filenode f;
  f.chunk_size = 1024;
  f.size = 0;
  EXPECT_EQ(f.ChunkCount(), 0u);
  f.size = 1;
  EXPECT_EQ(f.ChunkCount(), 1u);
  f.size = 1024;
  EXPECT_EQ(f.ChunkCount(), 1u);
  f.size = 1025;
  EXPECT_EQ(f.ChunkCount(), 2u);
}

// ---- encrypted framing ---------------------------------------------------------

TEST(MetadataCodec, RoundTrip) {
  const Preamble p{MetaType::kDirnodeMain, NewUuid(), 7};
  const Bytes body = ToBytes(std::string_view("hello metadata"));
  auto blob = EncodeMetadata(p, body, TestRootkey(), Rng());
  ASSERT_TRUE(blob.ok());

  auto decoded = DecodeMetadata(*blob, TestRootkey(), MetaType::kDirnodeMain, p.uuid);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->preamble.version, 7u);
  EXPECT_EQ(decoded->body, body);
}

TEST(MetadataCodec, BodyIsActuallyEncrypted) {
  const Preamble p{MetaType::kSupernode, NewUuid(), 1};
  const std::string secret = "SECRET-FILENAME-cake.c";
  auto blob = EncodeMetadata(p, AsBytes(secret), TestRootkey(), Rng()).value();
  const std::string haystack(reinterpret_cast<const char*>(blob.data()), blob.size());
  EXPECT_EQ(haystack.find(secret), std::string::npos);
}

TEST(MetadataCodec, FreshKeysEveryEncode) {
  const Preamble p{MetaType::kFilenode, NewUuid(), 1};
  const Bytes body(64, 0x42);
  auto a = EncodeMetadata(p, body, TestRootkey(), Rng()).value();
  auto b = EncodeMetadata(p, body, TestRootkey(), Rng()).value();
  EXPECT_NE(a, b); // re-keyed on every update
}

TEST(MetadataCodec, WrongRootkeyRejected) {
  const Preamble p{MetaType::kSupernode, NewUuid(), 1};
  auto blob = EncodeMetadata(p, Bytes(32, 1), TestRootkey(), Rng()).value();
  const RootKey other{9, 9, 9};
  auto r = DecodeMetadata(blob, other, MetaType::kSupernode, p.uuid);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIntegrityViolation);
}

TEST(MetadataCodec, EveryByteFlipDetected) {
  const Preamble p{MetaType::kFilenode, NewUuid(), 3};
  auto blob = EncodeMetadata(p, Bytes(40, 7), TestRootkey(), Rng()).value();
  // Exhaustive single-byte tamper sweep across the whole object: preamble,
  // crypto context and body must all be protected.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    Bytes bad = blob;
    bad[i] ^= 0x01;
    EXPECT_FALSE(DecodeMetadata(bad, TestRootkey(), MetaType::kFilenode, p.uuid).ok())
        << "byte " << i << " flip was not detected";
  }
}

TEST(MetadataCodec, TypeConfusionRejected) {
  // A filenode blob presented where a dirnode is expected must fail even
  // though it authenticates correctly.
  const Preamble p{MetaType::kFilenode, NewUuid(), 1};
  auto blob = EncodeMetadata(p, Bytes(8, 1), TestRootkey(), Rng()).value();
  EXPECT_FALSE(DecodeMetadata(blob, TestRootkey(), MetaType::kDirnodeMain, p.uuid).ok());
}

TEST(MetadataCodec, UuidMismatchRejected) {
  // File-swapping: object stored under a different UUID than it claims.
  const Preamble p{MetaType::kDirnodeMain, NewUuid(), 1};
  auto blob = EncodeMetadata(p, Bytes(8, 1), TestRootkey(), Rng()).value();
  EXPECT_FALSE(
      DecodeMetadata(blob, TestRootkey(), MetaType::kDirnodeMain, NewUuid()).ok());
  // Nil expected uuid skips the check (supernode discovery).
  EXPECT_TRUE(DecodeMetadata(blob, TestRootkey(), MetaType::kDirnodeMain, Uuid()).ok());
}

TEST(MetadataCodec, PeekPreambleReadsPlaintextHeader) {
  const Preamble p{MetaType::kSupernode, NewUuid(), 42};
  auto blob = EncodeMetadata(p, Bytes(8, 1), TestRootkey(), Rng()).value();
  auto peek = PeekPreamble(blob);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek->version, 42u);
  EXPECT_EQ(peek->uuid, p.uuid);
}

} // namespace
} // namespace nexus::enclave
