// HMAC-DRBG determinism and distribution sanity tests.
#include <gtest/gtest.h>

#include <set>

#include "crypto/rng.hpp"

namespace nexus::crypto {
namespace {

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(AsBytes("seed"));
  HmacDrbg b(AsBytes("seed"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
  EXPECT_EQ(a.Generate(13), b.Generate(13));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(AsBytes("seed-1"));
  HmacDrbg b(AsBytes("seed-2"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(AsBytes("seed"));
  HmacDrbg b(AsBytes("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(AsBytes("extra"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(HmacDrbg, SuccessiveOutputsDiffer) {
  HmacDrbg rng(AsBytes("x"));
  EXPECT_NE(rng.Generate(32), rng.Generate(32));
}

TEST(HmacDrbg, UuidsAreUnique) {
  HmacDrbg rng(AsBytes("uuid"));
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(rng.NewUuid().ToString()).second);
  }
}

TEST(HmacDrbg, BelowStaysInRange) {
  HmacDrbg rng(AsBytes("range"));
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(HmacDrbg, BelowCoversRange) {
  HmacDrbg rng(AsBytes("cover"));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SystemRng, ProducesOutput) {
  auto& rng = SystemRng();
  EXPECT_NE(rng.Generate(32), rng.Generate(32));
}

} // namespace
} // namespace nexus::crypto
