// Workload-layer correctness: minikv (WAL recovery), minisql (journal
// rollback, B+tree splits), tar round trips, treegen and the fs utilities.
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "test_env.hpp"
#include "vfs/afs_passthrough_fs.hpp"
#include "vfs/nexus_fs.hpp"
#include "workloads/fsutils.hpp"
#include "workloads/minikv.hpp"
#include "workloads/minisql.hpp"
#include "workloads/treegen.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#include <sanitizer/lsan_interface.h>
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace nexus::workloads {
namespace {

// Simulated crash: abandon the DB with no destructor and no Close(). The
// leak is the point of the test — exempt it from LeakSanitizer.
template <typename T>
void CrashWithoutClosing(std::unique_ptr<T> db) {
  [[maybe_unused]] T* leaked = db.release();
#if defined(__SANITIZE_ADDRESS__)
  __lsan_ignore_object(leaked);
#endif
}

Bytes Key(int i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016d", i);
  return ToBytes(std::string_view(buf, 16));
}

Bytes Value(int i, std::size_t len = 100) {
  Bytes v(len, static_cast<std::uint8_t>('a' + i % 26));
  v[0] = static_cast<std::uint8_t>(i);
  return v;
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("user");
    fs_ = std::make_unique<vfs::AfsPassthroughFs>(*machine_->afs);
  }

  test::World world_;
  test::Machine* machine_ = nullptr;
  std::unique_ptr<vfs::FileSystem> fs_;
};

// ---- minikv ------------------------------------------------------------------

TEST_F(WorkloadTest, MinikvPutGetRoundTrip) {
  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok()) << i;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(db->Get(Key(i)).value(), Value(i)) << i;
  }
  EXPECT_EQ(db->Get(Key(999)).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvOverwriteAndDelete) {
  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  ASSERT_TRUE(db->Put(Key(1), Value(1)).ok());
  ASSERT_TRUE(db->Put(Key(1), Value(2)).ok());
  EXPECT_EQ(db->Get(Key(1)).value(), Value(2));
  ASSERT_TRUE(db->Delete(Key(1)).ok());
  EXPECT_EQ(db->Get(Key(1)).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvMemtableFlushesToRuns) {
  minikv::Options opts;
  opts.write_buffer_size = 4096; // tiny buffer: force many flushes
  auto db = minikv::DB::Open(*fs_, "db", opts).value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  EXPECT_GT(db->run_count(), 2u);
  // Reads across run boundaries, newest version wins.
  ASSERT_TRUE(db->Put(Key(5), Value(77)).ok());
  EXPECT_EQ(db->Get(Key(5)).value(), Value(77));
  for (int i = 0; i < 200; i += 17) {
    ASSERT_TRUE(db->Get(Key(i)).ok()) << i;
  }
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvPersistsAcrossReopen) {
  {
    auto db = minikv::DB::Open(*fs_, "db", {}).value();
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Close().ok());
  }
  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(db->Get(Key(i)).value(), Value(i));
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvWalRecoveryAfterCrash) {
  {
    minikv::Options opts;
    opts.sync_writes = true; // every record reaches the server
    auto db = minikv::DB::Open(*fs_, "db", opts).value();
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
    // Crash: drop the DB object without Close(); the WAL handle flushed
    // each record via Sync, so the server has everything.
    CrashWithoutClosing(std::move(db));
  }
  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(db->Get(Key(i)).value(), Value(i)) << i;
  }
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvTornWalTailIgnored) {
  {
    minikv::Options opts;
    opts.sync_writes = true;
    auto db = minikv::DB::Open(*fs_, "db", opts).value();
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
    CrashWithoutClosing(std::move(db));
  }
  // The server tears the WAL tail (partial final record).
  Bytes wal = world_.server().AdversaryRead("afs/db/wal.log").value();
  wal.resize(wal.size() - 7);
  ASSERT_TRUE(world_.server().AdversaryWrite("afs/db/wal.log", wal).ok());
  machine_->afs->FlushCache();

  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(db->Get(Key(i)).ok()) << i; // intact records recovered
  }
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvScansAreOrdered) {
  auto db = minikv::DB::Open(*fs_, "db", {}).value();
  for (int i = 99; i >= 0; --i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  std::vector<Bytes> forward;
  ASSERT_TRUE(db->ScanForward([&](ByteSpan k, ByteSpan) {
                  forward.push_back(ToBytes(k));
                }).ok());
  ASSERT_EQ(forward.size(), 100u);
  EXPECT_TRUE(std::is_sorted(forward.begin(), forward.end()));

  std::vector<Bytes> backward;
  ASSERT_TRUE(db->ScanBackward([&](ByteSpan k, ByteSpan) {
                  backward.push_back(ToBytes(k));
                }).ok());
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
  ASSERT_TRUE(db->Close().ok());
}

// ---- minisql -----------------------------------------------------------------

TEST_F(WorkloadTest, MinisqlPutGetRoundTrip) {
  auto table = minisql::Table::Open(*fs_, "sql", {}).value();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(table->Put(Key(i), Value(i)).ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Get(Key(i)).value(), Value(i));
  EXPECT_FALSE(table->Get(Key(1000)).ok());
  ASSERT_TRUE(table->Close().ok());
}

TEST_F(WorkloadTest, MinisqlBtreeSplitsUnderLoad) {
  auto table = minisql::Table::Open(*fs_, "sql", {}).value();
  // 16-byte keys + 100-byte values: a 4 KB leaf holds ~33 entries, so 2000
  // inserts force multi-level splits.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(table->Put(Key(i * 7919 % 10000), Value(i)).ok()) << i;
  }
  EXPECT_GT(table->page_count(), 50u);
  for (int i = 0; i < 2000; i += 37) {
    EXPECT_TRUE(table->Get(Key(i * 7919 % 10000)).ok()) << i;
  }
  ASSERT_TRUE(table->Close().ok());
}

TEST_F(WorkloadTest, MinisqlPersistsAcrossReopen) {
  {
    auto table = minisql::Table::Open(*fs_, "sql", {}).value();
    for (int i = 0; i < 300; ++i) ASSERT_TRUE(table->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(table->Close().ok());
  }
  auto table = minisql::Table::Open(*fs_, "sql", {}).value();
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(table->Get(Key(i)).value(), Value(i)) << i;
  }
  ASSERT_TRUE(table->Close().ok());
}

TEST_F(WorkloadTest, MinisqlBatchTransaction) {
  auto table = minisql::Table::Open(*fs_, "sql", {}).value();
  ASSERT_TRUE(table->Begin().ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(table->Put(Key(i), Value(i)).ok());
  ASSERT_TRUE(table->Commit().ok());
  EXPECT_EQ(table->Get(Key(250)).value(), Value(250));
  EXPECT_FALSE(table->Commit().ok()); // no open txn
  ASSERT_TRUE(table->Close().ok());
}

TEST_F(WorkloadTest, MinisqlJournalRollsBackTornCommit) {
  minisql::Options opts;
  opts.sync = minisql::SyncMode::kFull;
  {
    auto table = minisql::Table::Open(*fs_, "sql", opts).value();
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(table->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(table->Close().ok());
  }
  // Simulate a crash between journal write and page write: capture the
  // current db, do another committed write, then restore a *mixed* state
  // with the journal still present.
  const Bytes journal = [&] {
    // Build the journal an in-flight txn would have written: pre-images of
    // the pages about to change. We reproduce it by snapshotting the db,
    // running one more put with sync mode, and grabbing the journal that
    // existed mid-commit. Easiest faithful approximation: hand-craft a
    // journal whose pre-image restores page 1 to its current content.
    Bytes db = world_.server().AdversaryRead("afs/sql/table.db").value();
    Writer w;
    w.U32(1);
    w.U32(1);
    w.Raw(ByteSpan(db.data() + minisql::kPageSize, minisql::kPageSize));
    return std::move(w).Take();
  }();

  // Corrupt page 1 (the torn page write), leave the journal behind.
  Bytes db = world_.server().AdversaryRead("afs/sql/table.db").value();
  Bytes good_page(db.begin() + minisql::kPageSize,
                  db.begin() + 2 * minisql::kPageSize);
  for (std::size_t i = 0; i < minisql::kPageSize; ++i) {
    db[minisql::kPageSize + i] = 0xff;
  }
  ASSERT_TRUE(world_.server().AdversaryWrite("afs/sql/table.db", db).ok());
  ASSERT_TRUE(world_.server().AdversaryWrite("afs/sql/journal", journal).ok());
  machine_->afs->FlushCache();

  // Reopen: recovery must restore page 1 from the journal.
  auto table = minisql::Table::Open(*fs_, "sql", opts).value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(table->Get(Key(i)).ok()) << i;
  }
  EXPECT_FALSE(fs_->Exists("sql/journal"));
  ASSERT_TRUE(table->Close().ok());
}

// ---- tar / fsutils --------------------------------------------------------------

TEST_F(WorkloadTest, TarRoundTrip) {
  ASSERT_TRUE(fs_->MkdirAll("src/sub/deep").ok());
  ASSERT_TRUE(fs_->WriteWholeFile("src/a.txt", ToBytes(std::string_view("alpha"))).ok());
  ASSERT_TRUE(fs_->WriteWholeFile("src/sub/b.bin", Bytes(1000, 0x42)).ok());
  ASSERT_TRUE(fs_->WriteWholeFile("src/sub/deep/c", Bytes(513, 7)).ok()); // spans blocks
  ASSERT_TRUE(fs_->Symlink("a.txt", "src/link").ok());

  ASSERT_TRUE(TarCreate(*fs_, "src", "out.tar").ok());
  ASSERT_TRUE(TarExtract(*fs_, "out.tar", "dst").ok());

  EXPECT_EQ(fs_->ReadWholeFile("dst/a.txt").value(),
            ToBytes(std::string_view("alpha")));
  EXPECT_EQ(fs_->ReadWholeFile("dst/sub/b.bin").value(), Bytes(1000, 0x42));
  EXPECT_EQ(fs_->ReadWholeFile("dst/sub/deep/c").value(), Bytes(513, 7));
  EXPECT_EQ(fs_->Readlink("dst/link").value(), "a.txt");
}

TEST_F(WorkloadTest, TarRejectsCorruptArchive) {
  ASSERT_TRUE(fs_->MkdirAll("src").ok());
  ASSERT_TRUE(fs_->WriteWholeFile("src/f", Bytes(100, 1)).ok());
  ASSERT_TRUE(TarCreate(*fs_, "src", "out.tar").ok());

  Bytes archive = fs_->ReadWholeFile("out.tar").value();
  archive[60] ^= 0x1; // inside the header checksum region
  ASSERT_TRUE(fs_->WriteWholeFile("bad.tar", archive).ok());
  EXPECT_FALSE(TarExtract(*fs_, "bad.tar", "dst").ok());
}

TEST_F(WorkloadTest, DuGrepCpMv) {
  ASSERT_TRUE(fs_->MkdirAll("w/sub").ok());
  ASSERT_TRUE(fs_->WriteWholeFile("w/a", Bytes(100, 'x')).ok());
  ASSERT_TRUE(
      fs_->WriteWholeFile("w/sub/b", ToBytes(std::string_view("uses javascript here"))).ok());

  EXPECT_EQ(Du(*fs_, "w").value(), 120u);
  EXPECT_EQ(GrepCount(*fs_, "w", "javascript").value(), 1u);
  EXPECT_EQ(GrepCount(*fs_, "w", "rustlang").value(), 0u);

  ASSERT_TRUE(Cp(*fs_, "w/a", "w/a-copy").ok());
  EXPECT_EQ(fs_->ReadWholeFile("w/a-copy").value(), Bytes(100, 'x'));

  ASSERT_TRUE(Mv(*fs_, "w/a-copy", "w/renamed").ok());
  EXPECT_FALSE(fs_->Exists("w/a-copy"));
  EXPECT_EQ(Du(*fs_, "w").value(), 220u);
}

// ---- treegen -----------------------------------------------------------------

TEST_F(WorkloadTest, TreegenHitsSpec) {
  TreeSpec spec{"test", 100, 12, 4, {30}, 1 << 20};
  crypto::HmacDrbg rng(AsBytes("tree"));
  ASSERT_TRUE(fs_->Mkdir("repo").ok());
  const TreeStats stats = GenerateTree(*fs_, "repo", spec, rng).value();
  EXPECT_EQ(stats.files, 100u);
  EXPECT_EQ(stats.dirs, 12u);
  EXPECT_EQ(stats.max_depth, 4u);
  // Total bytes within 20% of target (log-uniform + rounding).
  EXPECT_NEAR(static_cast<double>(stats.total_bytes), 1 << 20,
              0.2 * (1 << 20));
  // The whole tree is really on the filesystem.
  EXPECT_EQ(Du(*fs_, "repo").value(), stats.total_bytes);
}

TEST_F(WorkloadTest, TreegenDeterministicAcrossMounts) {
  TreeSpec spec{"t", 50, 8, 3, {}, 1 << 18};
  crypto::HmacDrbg rng_a(AsBytes("same-seed"));
  crypto::HmacDrbg rng_b(AsBytes("same-seed"));
  ASSERT_TRUE(fs_->Mkdir("a").ok());
  ASSERT_TRUE(fs_->Mkdir("b").ok());
  const TreeStats a = GenerateTree(*fs_, "a", spec, rng_a).value();
  const TreeStats b = GenerateTree(*fs_, "b", spec, rng_b).value();
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(Du(*fs_, "a").value(), Du(*fs_, "b").value());
}

TEST_F(WorkloadTest, TreegenGrepFindsJavascriptTokens) {
  TreeSpec spec{"t", 30, 4, 2, {}, 1 << 18};
  crypto::HmacDrbg rng(AsBytes("grep"));
  ASSERT_TRUE(fs_->Mkdir("repo").ok());
  ASSERT_TRUE(GenerateTree(*fs_, "repo", spec, rng).ok());
  EXPECT_GT(GrepCount(*fs_, "repo", "javascript").value(), 0u);
}


TEST_F(WorkloadTest, MinikvCompactionBoundsRunCount) {
  minikv::Options opts;
  opts.write_buffer_size = 2048;
  opts.max_runs = 3;
  auto db = minikv::DB::Open(*fs_, "db", opts).value();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok()) << i;
  }
  EXPECT_LE(db->run_count(), 4u); // compaction keeps the set bounded
  for (int i = 0; i < 500; i += 13) {
    EXPECT_EQ(db->Get(Key(i)).value(), Value(i)) << i;
  }
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvCompactionDropsDeletedKeysForGood) {
  minikv::Options opts;
  opts.write_buffer_size = 1024;
  opts.max_runs = 2;
  auto db = minikv::DB::Open(*fs_, "db", opts).value();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(db->Delete(Key(i)).ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->run_count(), 1u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(db->Get(Key(i)).status().code(), ErrorCode::kNotFound) << i;
  }
  for (int i = 50; i < 100; ++i) {
    EXPECT_EQ(db->Get(Key(i)).value(), Value(i)) << i;
  }
  // Scans agree after compaction.
  std::size_t n = 0;
  ASSERT_TRUE(db->ScanForward([&](ByteSpan, ByteSpan) { ++n; }).ok());
  EXPECT_EQ(n, 50u);
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, MinikvCompactedDbReopensCleanly) {
  minikv::Options opts;
  opts.write_buffer_size = 1024;
  opts.max_runs = 2;
  {
    auto db = minikv::DB::Open(*fs_, "db", opts).value();
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
    ASSERT_TRUE(db->Close().ok());
  }
  auto db = minikv::DB::Open(*fs_, "db", opts).value();
  for (int i = 0; i < 200; i += 7) EXPECT_EQ(db->Get(Key(i)).value(), Value(i));
  ASSERT_TRUE(db->Close().ok());
}

// ---- everything again, through NEXUS -------------------------------------------

TEST_F(WorkloadTest, MinikvRunsOnNexusMount) {
  auto handle = machine_->nexus->CreateVolume(machine_->user);
  ASSERT_TRUE(handle.ok());
  vfs::NexusFs nexus_fs(*machine_->nexus);
  auto db = minikv::DB::Open(nexus_fs, "db", {}).value();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(db->Get(Key(i)).value(), Value(i));
  ASSERT_TRUE(db->Close().ok());
}

TEST_F(WorkloadTest, TarRoundTripOnNexusMount) {
  auto handle = machine_->nexus->CreateVolume(machine_->user);
  ASSERT_TRUE(handle.ok());
  vfs::NexusFs nexus_fs(*machine_->nexus);
  ASSERT_TRUE(nexus_fs.MkdirAll("src").ok());
  ASSERT_TRUE(nexus_fs.WriteWholeFile("src/f", Bytes(2000, 9)).ok());
  ASSERT_TRUE(TarCreate(nexus_fs, "src", "out.tar").ok());
  ASSERT_TRUE(TarExtract(nexus_fs, "out.tar", "dst").ok());
  EXPECT_EQ(nexus_fs.ReadWholeFile("dst/f").value(), Bytes(2000, 9));
}

TEST_F(WorkloadTest, MinisqlRunsOnNexusMountWithSync) {
  auto handle = machine_->nexus->CreateVolume(machine_->user);
  ASSERT_TRUE(handle.ok());
  vfs::NexusFs nexus_fs(*machine_->nexus);
  minisql::Options opts;
  opts.sync = minisql::SyncMode::kFull;
  auto table = minisql::Table::Open(nexus_fs, "sql", opts).value();
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(table->Put(Key(i), Value(i)).ok());
  for (int i = 0; i < 40; ++i) EXPECT_EQ(table->Get(Key(i)).value(), Value(i));
  ASSERT_TRUE(table->Close().ok());
}

} // namespace
} // namespace nexus::workloads
