// Semantics of the work-stealing pool and its ordered-join TaskGroup: the
// primitives the enclave's parallel chunk-crypto engine is built on.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace nexus::parallel {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  TaskGroup group(&pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    group.Submit([&hits, i](WorkerContext&) { hits[i].fetch_add(1); });
  }
  group.WaitAll();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.tasks_executed, hits.size());
}

TEST(ThreadPoolTest, WaitUnblocksPerSlotInSubmissionOrder) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> done{0};
  std::vector<std::size_t> slots;
  for (int i = 0; i < 16; ++i) {
    slots.push_back(group.Submit([&done](WorkerContext&) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    }));
  }
  // Consuming in submission order must observe each task complete.
  int consumed = 0;
  for (std::size_t slot : slots) {
    group.Wait(slot);
    ++consumed;
    EXPECT_GE(done.load(), consumed);
  }
  EXPECT_EQ(consumed, 16);
}

TEST(ThreadPoolTest, ScratchBufferPersistsPerWorker) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> nonempty{0};
  for (int round = 0; round < 2; ++round) {
    TaskGroup g(&pool);
    for (int i = 0; i < 8; ++i) {
      g.Submit([&nonempty, round](WorkerContext& ctx) {
        MutableByteSpan buf = ctx.Scratch(4096);
        buf[0] = 0xAB;
        // Second round: the buffer survived the previous task on this
        // worker (no per-task allocation).
        if (round == 1 && ctx.scratch.size() >= 4096) nonempty.fetch_add(1);
      });
    }
    g.WaitAll();
  }
  EXPECT_GT(nonempty.load(), 0);
}

TEST(ThreadPoolTest, NullPoolExecutesInline) {
  TaskGroup group(nullptr);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  const std::size_t slot = group.Submit(
      [&ran_on, caller](WorkerContext&) { ran_on = std::this_thread::get_id(); });
  // Inline execution completes during Submit — no pool, no blocking.
  group.Wait(slot);
  EXPECT_EQ(ran_on, caller);
  group.WaitAll();
  EXPECT_GT(group.busy_seconds(), -1.0); // accounted, possibly ~0
  EXPECT_DOUBLE_EQ(group.busy_seconds(), group.critical_path_seconds());
}

TEST(ThreadPoolTest, CpuAccountingCoversAllTasks) {
  ThreadPool pool(3);
  TaskGroup group(&pool);
  for (int i = 0; i < 12; ++i) {
    group.Submit([](WorkerContext&) {
      // Burn a little CPU so busy_seconds is measurably positive.
      volatile std::uint64_t x = 1;
      for (int k = 0; k < 200000; ++k) x = x * 1664525u + 1013904223u;
    });
  }
  group.WaitAll();
  EXPECT_GT(group.busy_seconds(), 0.0);
  EXPECT_GT(group.critical_path_seconds(), 0.0);
  // The critical path can never exceed total work, nor be shorter than an
  // even split across workers.
  EXPECT_LE(group.critical_path_seconds(), group.busy_seconds() + 1e-9);
  EXPECT_GE(group.critical_path_seconds() * 3, group.busy_seconds() - 1e-9);
}

TEST(ThreadPoolTest, ManyGroupsOverOnePoolDoNotInterfere) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(&pool);
    for (int i = 0; i < 10; ++i) {
      group.Submit([&sum, i](WorkerContext&) { sum.fetch_add(i); });
    }
    // Destructor joins the group.
  }
  EXPECT_EQ(sum.load(), 20u * 45u);
}

} // namespace
} // namespace nexus::parallel
