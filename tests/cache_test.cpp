// CachedBackend unit tests against a local counting inner store: hit
// serving without inner contact, TTL expiry, writeback coalescing and
// batching, the journal write barrier, disk-tier persistence across
// restart (including crash recovery and MAC tampering), and budget-driven
// eviction. Lease-path behavior against a real nexusd lives in
// cache_coherence_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/cached_backend.hpp"
#include "common/bytes.hpp"
#include "storage/backend.hpp"

namespace nexus {
namespace {

using cache::CacheOptions;
using cache::CachedBackend;

Bytes Blob(char fill, std::size_t n) {
  return Bytes(n, static_cast<std::uint8_t>(fill));
}

// Forwards to a SHARED MemBackend (so a test can outlive one cache
// instance and hand the same store to the next) while counting every
// inner-store contact and recording mutation order.
class CountingBackend final : public storage::StorageBackend {
 public:
  explicit CountingBackend(std::shared_ptr<storage::MemBackend> store)
      : store_(std::move(store)) {}

  Result<Bytes> Get(const std::string& name) override {
    ++gets_;
    return store_->Get(name);
  }
  Status Put(const std::string& name, ByteSpan data) override {
    ++puts_;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      put_order_.push_back(name);
    }
    return store_->Put(name, data);
  }
  Status Delete(const std::string& name) override {
    ++deletes_;
    return store_->Delete(name);
  }
  bool Exists(const std::string& name) override {
    ++exists_;
    return store_->Exists(name);
  }
  std::vector<std::string> List(const std::string& prefix) override {
    return store_->List(prefix);
  }

  std::atomic<int> gets_{0};
  std::atomic<int> puts_{0};
  std::atomic<int> deletes_{0};
  std::atomic<int> exists_{0};
  std::vector<std::string> put_order() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return put_order_;
  }

 private:
  std::shared_ptr<storage::MemBackend> store_;
  mutable std::mutex mu_;
  std::vector<std::string> put_order_;
};

struct Harness {
  std::shared_ptr<storage::MemBackend> store =
      std::make_shared<storage::MemBackend>();
  CountingBackend* inner = nullptr; // owned by the cache
  std::shared_ptr<std::atomic<std::uint64_t>> clock_ms =
      std::make_shared<std::atomic<std::uint64_t>>(1);

  std::unique_ptr<CachedBackend> MakeCache(CacheOptions options = {}) {
    auto counting = std::make_unique<CountingBackend>(store);
    inner = counting.get();
    options.now_ms = [clock = clock_ms] { return clock->load(); };
    return std::make_unique<CachedBackend>(std::move(counting), options);
  }
};

std::filesystem::path FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nexus-cache-" + tag + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// ---- read path --------------------------------------------------------------

TEST(CacheTest, RepeatReadServedWithoutInnerContact) {
  Harness h;
  auto cache = h.MakeCache();
  EXPECT_FALSE(cache->lease_mode()); // local inner cannot push invalidations

  ASSERT_TRUE(cache->Put("a", Blob('a', 100)).ok());
  // TTL mode caches our own write; both reads are memory hits.
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 100));
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 100));
  EXPECT_EQ(h.inner->gets_.load(), 0);
  const auto counters = cache->counters();
  EXPECT_EQ(counters.mem_hits, 2u);
  EXPECT_EQ(counters.misses, 0u);
}

TEST(CacheTest, TtlExpiryRefetchesFromInner) {
  Harness h;
  CacheOptions options;
  options.ttl_ms = 50;
  auto cache = h.MakeCache(options);

  ASSERT_TRUE(cache->Put("a", Blob('a', 64)).ok());
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 64));
  EXPECT_EQ(h.inner->gets_.load(), 0);

  h.clock_ms->fetch_add(51); // past the TTL
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 64));
  EXPECT_EQ(h.inner->gets_.load(), 1); // expired entry went back to the wire
  EXPECT_EQ(cache->counters().misses, 1u);
}

TEST(CacheTest, MultiGetServesHitsAndFillsMisses) {
  Harness h;
  auto cache = h.MakeCache();
  ASSERT_TRUE(h.store->Put("x", Blob('x', 10)).ok());
  ASSERT_TRUE(h.store->Put("y", Blob('y', 20)).ok());
  ASSERT_TRUE(cache->Put("z", Blob('z', 30)).ok());

  const auto results = cache->MultiGet({"x", "y", "z", "missing"});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].value(), Blob('x', 10));
  EXPECT_EQ(results[1].value(), Blob('y', 20));
  EXPECT_EQ(results[2].value(), Blob('z', 30));
  EXPECT_EQ(results[3].status().code(), ErrorCode::kNotFound);

  // x and y are installed now: a second batch touches the inner store only
  // for the name that does not exist anywhere.
  const int gets_before = h.inner->gets_.load();
  const auto again = cache->MultiGet({"x", "y", "z", "missing"});
  EXPECT_EQ(again[0].value(), Blob('x', 10));
  EXPECT_EQ(h.inner->gets_.load(), gets_before + 1);
}

// ---- writeback --------------------------------------------------------------

TEST(CacheTest, WritebackCoalescesRepeatedPuts) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  auto cache = h.MakeCache(options);

  // Ten writes to one name coalesce to ONE inner Put at flush time.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache->Put("hot", Blob('h', 100 + i)).ok());
  }
  EXPECT_EQ(h.inner->puts_.load(), 0);
  EXPECT_GT(cache->dirty_bytes(), 0u);

  ASSERT_TRUE(cache->Flush().ok());
  EXPECT_EQ(h.inner->puts_.load(), 1);
  EXPECT_EQ(cache->dirty_bytes(), 0u);
  EXPECT_EQ(h.store->Get("hot").value(), Blob('h', 109)); // last write won

  const auto counters = cache->counters();
  EXPECT_EQ(counters.writeback_objects, 1u);
  EXPECT_GE(counters.writeback_batches, 1u);
  EXPECT_GT(counters.dirty_bytes_high_water, 0u);
}

TEST(CacheTest, WritebackFlushesInBatches) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  options.writeback_batch_objects = 4;
  auto cache = h.MakeCache(options);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache->Put("obj" + std::to_string(i), Blob('o', 64)).ok());
  }
  ASSERT_TRUE(cache->Flush().ok());
  EXPECT_EQ(h.inner->puts_.load(), 10);
  const auto counters = cache->counters();
  EXPECT_EQ(counters.writeback_objects, 10u);
  EXPECT_EQ(counters.writeback_batches, 3u); // 4 + 4 + 2
}

TEST(CacheTest, JournalBarrierDrainsDirtyDataFirst) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  auto cache = h.MakeCache(options);

  // PR 1 ordering: a journal record must never reach the store ahead of
  // the data writes it assumes are durable. The nxj/ Put is a barrier.
  ASSERT_TRUE(cache->Put("data/1", Blob('d', 64)).ok());
  ASSERT_TRUE(cache->Put("data/2", Blob('e', 64)).ok());
  EXPECT_EQ(h.inner->puts_.load(), 0); // both parked in the queue
  ASSERT_TRUE(cache->Put("nxj/record-1", Blob('j', 32)).ok());

  const auto order = h.inner->put_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "data/1");
  EXPECT_EQ(order[1], "data/2");
  EXPECT_EQ(order[2], "nxj/record-1"); // barrier last, after the drain
}

TEST(CacheTest, StreamCommitToBarrierNameDrainsFirst) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  auto cache = h.MakeCache(options);

  ASSERT_TRUE(cache->Put("data/1", Blob('d', 64)).ok());
  auto stream = cache->OpenPutStream("nxj/record-2");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()->Append(Blob('j', 16)).ok());
  ASSERT_TRUE(stream.value()->Commit().ok());

  const auto order = h.inner->put_order();
  ASSERT_GE(order.size(), 1u);
  EXPECT_EQ(order[0], "data/1"); // drained before the stream published
  EXPECT_TRUE(h.store->Exists("nxj/record-2"));
}

TEST(CacheTest, DeleteOfUnflushedObjectNeverReachesInner) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  auto cache = h.MakeCache(options);

  ASSERT_TRUE(cache->Put("ephemeral", Blob('e', 64)).ok());
  // The object only ever existed in the writeback queue: Delete is Ok even
  // though the inner store reports kNotFound.
  EXPECT_TRUE(cache->Delete("ephemeral").ok());
  ASSERT_TRUE(cache->Flush().ok());
  EXPECT_FALSE(h.store->Exists("ephemeral"));
}

// ---- eviction ---------------------------------------------------------------

TEST(CacheTest, EvictionKeepsMemoryUnderBudget) {
  Harness h;
  CacheOptions options;
  options.mem_budget_bytes = 4096;
  auto cache = h.MakeCache(options);

  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(h.store->Put("o" + std::to_string(i), Blob('o', 1024)).ok());
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(cache->Get("o" + std::to_string(i)).value(), Blob('o', 1024));
  }
  EXPECT_LE(cache->mem_bytes(), 4096u);
  EXPECT_GE(cache->counters().evictions_mem, 12u);
}

TEST(CacheTest, DirtyEntriesArePinnedAgainstEviction) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  options.mem_budget_bytes = 2048;
  auto cache = h.MakeCache(options);

  // Four dirty KiBs exceed the budget, but unflushed bytes must never be
  // dropped — the budget yields instead.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache->Put("d" + std::to_string(i), Blob('d', 1024)).ok());
  }
  EXPECT_EQ(cache->dirty_bytes(), 4096u);
  ASSERT_TRUE(cache->Flush().ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.store->Exists("d" + std::to_string(i)));
  }
}

// ---- disk tier --------------------------------------------------------------

TEST(CacheTest, DiskTierSurvivesRestartAndServesHitsWithoutInner) {
  Harness h;
  const auto dir = FreshDir("restart");
  CacheOptions options;
  options.mem_budget_bytes = 2048; // force demotion of clean entries
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(cache->Put("r" + std::to_string(i), Blob('r', 1024)).ok());
    }
    // Destructor flushes and persists the MAC'd index.
  }

  auto cache = h.MakeCache(options);
  int disk_served = 0;
  for (int i = 0; i < 8; ++i) {
    const std::string name = "r" + std::to_string(i);
    const int gets_before = h.inner->gets_.load();
    auto got = cache->Get(name);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(got.value(), Blob('r', 1024));
    if (h.inner->gets_.load() == gets_before) ++disk_served;
  }
  EXPECT_GT(disk_served, 0); // restart-surviving hits, no inner contact
  EXPECT_GT(cache->counters().disk_hits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CacheTest, CrashOrphanedDataFilesAreDiscardedOnLoad) {
  Harness h;
  const auto dir = FreshDir("orphan");
  CacheOptions options;
  options.mem_budget_bytes = 1024;
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    ASSERT_TRUE(cache->Put("kept", Blob('k', 900)).ok());
    ASSERT_TRUE(cache->Put("evictor", Blob('e', 900)).ok()); // demotes "kept"
  }
  // Simulate a crash between a data-file write and the index update: a
  // file the (MAC-verified) index cannot account for appears in the dir.
  const auto orphan = dir / storage::EscapeName("orphan-object");
  std::ofstream(orphan, std::ios::binary) << "stale bytes from a dead write";
  ASSERT_TRUE(std::filesystem::exists(orphan));

  auto cache = h.MakeCache(options);
  EXPECT_FALSE(std::filesystem::exists(orphan)); // recovery deleted it
  // The inner store stays the source of truth for the orphan's name.
  EXPECT_EQ(cache->Get("orphan-object").status().code(), ErrorCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(CacheTest, TamperedIndexDiscardsDiskTier) {
  Harness h;
  const auto dir = FreshDir("tamper");
  CacheOptions options;
  options.mem_budget_bytes = 1024;
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    ASSERT_TRUE(cache->Put("a", Blob('a', 900)).ok());
    ASSERT_TRUE(cache->Put("b", Blob('b', 900)).ok());
  }
  // Flip one payload byte; the MAC check must reject the whole index.
  const auto index_path = dir / ".cache-index";
  ASSERT_TRUE(std::filesystem::exists(index_path));
  {
    std::fstream f(index_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40); // inside the payload, past the 32-byte MAC
    f.put('\x7f');
  }

  auto cache = h.MakeCache(options);
  EXPECT_EQ(cache->counters().disk_hits, 0u);
  // Reads still succeed — straight from the inner store.
  const int gets_before = h.inner->gets_.load();
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 900));
  EXPECT_EQ(h.inner->gets_.load(), gets_before + 1);
  std::filesystem::remove_all(dir);
}

std::string FileBytes(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// Mutations between compactions land in the ".cache-log" append-log; the
// base ".cache-index" is NOT rewritten per mutation. A clean shutdown
// compacts: base absorbs the log and the log is truncated to empty.
TEST(CacheTest, AppendLogAbsorbsMutationsWithoutBaseRewrite) {
  Harness h;
  const auto dir = FreshDir("append-log");
  CacheOptions options;
  options.mem_budget_bytes = 1024; // every Put demotes its predecessor
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    ASSERT_TRUE(cache->Put("a", Blob('a', 900)).ok());
    ASSERT_TRUE(cache->Put("b", Blob('b', 900)).ok()); // demotes "a"
  }
  const auto index_path = dir / ".cache-index";
  const auto log_path = dir / ".cache-log";
  ASSERT_TRUE(std::filesystem::exists(index_path));
  // Clean shutdown compacted: the log holds nothing the base doesn't.
  EXPECT_EQ(std::filesystem::file_size(log_path), 0u);

  {
    auto cache = h.MakeCache(options);
    const std::string base_before = FileBytes(index_path);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(cache->Put("m" + std::to_string(i), Blob('m', 900)).ok());
    }
    // 40 demotions appended records; the base image was left alone.
    EXPECT_EQ(FileBytes(index_path), base_before);
    EXPECT_GT(std::filesystem::file_size(log_path), 0u);
  }
  // Destructor flush = compaction: base rewritten, log reset.
  EXPECT_EQ(std::filesystem::file_size(log_path), 0u);
  std::filesystem::remove_all(dir);
}

// A crash before compaction loses nothing: load-time replay folds the
// append-log's insert/remove records onto the base image, so entries
// only the log knows about are still served from disk.
TEST(CacheTest, CrashBeforeCompactionReplaysAppendLog) {
  Harness h;
  const auto dir = FreshDir("log-replay");
  const auto crash_dir = FreshDir("log-replay-crash");
  CacheOptions options;
  options.mem_budget_bytes = 1024;
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    ASSERT_TRUE(cache->Put("a", Blob('a', 900)).ok());
    ASSERT_TRUE(cache->Put("b", Blob('b', 900)).ok()); // base gets "a"
  }
  {
    auto cache = h.MakeCache(options);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(cache->Put("m" + std::to_string(i), Blob('m', 900)).ok());
    }
    // Snapshot the dir BEFORE the destructor compacts — this is the
    // exact on-disk state a crash would leave: stale base + live log.
    std::filesystem::copy(dir, crash_dir,
                          std::filesystem::copy_options::recursive);
  }

  Harness fresh; // empty inner store: any successful read proves a disk hit
  CacheOptions crash_options = options;
  crash_options.disk_dir = crash_dir.string();
  auto cache = fresh.MakeCache(crash_options);
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 900));    // from the base
  EXPECT_EQ(cache->Get("m10").value(), Blob('m', 900));  // from the log
  EXPECT_EQ(fresh.inner->gets_.load(), 0);
  EXPECT_GE(cache->counters().disk_hits, 2u);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
}

// A corrupt log record ends the replay at that record: everything the
// base image holds stands, log-only entries after the tear are dropped
// and their data files swept as orphans — reads fall back to the inner
// store instead of serving unverified bytes.
TEST(CacheTest, CorruptLogRecordEndsReplayAtBase) {
  Harness h;
  const auto dir = FreshDir("log-tamper");
  const auto crash_dir = FreshDir("log-tamper-crash");
  CacheOptions options;
  options.mem_budget_bytes = 1024;
  options.disk_dir = dir.string();

  {
    auto cache = h.MakeCache(options);
    ASSERT_TRUE(cache->Put("a", Blob('a', 900)).ok());
    ASSERT_TRUE(cache->Put("b", Blob('b', 900)).ok());
  }
  {
    auto cache = h.MakeCache(options);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(cache->Put("t" + std::to_string(i), Blob('t', 900)).ok());
    }
    std::filesystem::copy(dir, crash_dir,
                          std::filesystem::copy_options::recursive);
  }
  // Flip a byte inside the FIRST record's body: its per-record MAC fails,
  // so the replay trusts nothing in the log.
  {
    std::fstream f(crash_dir / ".cache-log",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(5); // past the u32 length prefix, inside the body
    f.put('\x7f');
  }

  Harness fresh;
  CacheOptions crash_options = options;
  crash_options.disk_dir = crash_dir.string();
  auto cache = fresh.MakeCache(crash_options);
  EXPECT_EQ(cache->Get("a").value(), Blob('a', 900)); // base entry stands
  EXPECT_EQ(fresh.inner->gets_.load(), 0);
  // Log-only entries are gone — and so are their (orphaned) data files.
  EXPECT_EQ(cache->Get("t5").status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(
      std::filesystem::exists(crash_dir / storage::EscapeName("t5")));
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
}

TEST(CacheTest, DropCleanEntriesKeepsDirtyData) {
  Harness h;
  CacheOptions options;
  options.writeback = CacheOptions::Writeback::kOn;
  auto cache = h.MakeCache(options);

  ASSERT_TRUE(h.store->Put("clean", Blob('c', 64)).ok());
  EXPECT_EQ(cache->Get("clean").value(), Blob('c', 64));
  ASSERT_TRUE(cache->Put("dirty", Blob('d', 64)).ok());

  cache->DropCleanEntries();
  const int gets_before = h.inner->gets_.load();
  EXPECT_EQ(cache->Get("clean").value(), Blob('c', 64)); // refetched
  EXPECT_EQ(h.inner->gets_.load(), gets_before + 1);
  EXPECT_EQ(cache->Get("dirty").value(), Blob('d', 64)); // still local truth
  ASSERT_TRUE(cache->Flush().ok());
  EXPECT_TRUE(h.store->Exists("dirty"));
}

} // namespace
} // namespace nexus
