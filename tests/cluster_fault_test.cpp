// Cluster failure-mode tests over REAL nexusd shards on loopback
// sockets: killing a replica mid-write under deterministic
// FaultyTransport schedules (exact quorum outcomes), zero-client-loss
// when one of three shards dies, and read-repair convergence after a
// shard restarts empty on its old port.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_backend.hpp"
#include "net/fault.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "storage/backend.hpp"

namespace nexus::cluster {
namespace {

using net::FaultSpec;
using net::FaultStats;
using net::FaultyTransport;
using net::NexusdOptions;
using net::NexusdServer;
using net::RemoteBackend;
using net::RemoteBackendOptions;
using net::TcpTransport;
using net::Transport;
using net::TransportFactory;

RemoteBackendOptions FastClientOptions() {
  RemoteBackendOptions options;
  options.max_attempts = 2;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 2;
  options.rpc_deadline_ms = 10000;
  options.connect_deadline_ms = 2000;
  return options;
}

ClusterOptions FastClusterOptions() {
  ClusterOptions options;
  options.replication = 2;
  options.writer_id = 11;
  options.eject_after = 2;
  options.reinstate_backoff_base_ms = 10;
  options.background_rebalance = false;
  return options;
}

/// Three nexusd daemons, each a cluster shard over real TCP.
class NexusdCluster {
 public:
  explicit NexusdCluster(std::size_t n, FaultSpec spec = {},
                         std::uint64_t seed = 1,
                         std::size_t faulty_shard = SIZE_MAX,
                         ClusterOptions cluster_options = FastClusterOptions()) {
    stats_ = std::make_shared<FaultStats>();
    std::vector<ShardSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
      stores_.push_back(std::make_unique<storage::MemBackend>());
      NexusdOptions options;
      options.workers = 8;
      servers_.push_back(NexusdServer::Start(*stores_[i], options).value());
      const std::uint16_t port = servers_[i]->port();
      ports_.push_back(port);

      const bool faulty = i == faulty_shard;
      const FaultSpec shard_spec = faulty ? spec : FaultSpec{};
      auto counter = std::make_shared<std::uint64_t>(0);
      auto stats = stats_;
      TransportFactory transport =
          [port, shard_spec, seed, counter,
           stats]() -> Result<std::unique_ptr<Transport>> {
        NEXUS_ASSIGN_OR_RETURN(
            std::unique_ptr<TcpTransport> tcp,
            TcpTransport::Dial("127.0.0.1", port, 2000, 2000));
        const std::uint64_t connection_seed = seed + 0x9e37 * (*counter)++;
        return std::unique_ptr<Transport>(std::make_unique<FaultyTransport>(
            std::move(tcp), shard_spec, connection_seed, stats));
      };
      specs.push_back(ShardSpec{
          "127.0.0.1:" + std::to_string(port),
          [transport]() -> Result<std::unique_ptr<storage::StorageBackend>> {
            RemoteBackendOptions client = FastClientOptions();
            return std::unique_ptr<storage::StorageBackend>(
                std::make_unique<RemoteBackend>(transport, client));
          },
          // Same revive hook ClusterBackend::Connect installs: re-Ping so
          // a shard that came back renegotiates its wire version.
          [](storage::StorageBackend& b) {
            return static_cast<RemoteBackend&>(b).Ping();
          }});
    }
    cluster_ = ClusterBackend::Create(std::move(specs),
                                      std::move(cluster_options))
                   .value();
  }

  ClusterBackend& cluster() { return *cluster_; }
  storage::MemBackend& store(std::size_t i) { return *stores_[i]; }
  const FaultStats& fault_stats() const { return *stats_; }

  void KillShard(std::size_t i) { servers_[i].reset(); }
  /// Restarts shard i on ITS OLD PORT with an EMPTY store — the
  /// "replica lost its disk" scenario read-repair must heal.
  void RestartShardEmpty(std::size_t i) {
    servers_[i].reset();
    stores_[i] = std::make_unique<storage::MemBackend>();
    NexusdOptions options;
    options.workers = 8;
    options.port = ports_[i];
    servers_[i] = NexusdServer::Start(*stores_[i], options).value();
  }

 private:
  std::vector<std::unique_ptr<storage::MemBackend>> stores_;
  std::vector<std::unique_ptr<NexusdServer>> servers_;
  std::vector<std::uint16_t> ports_;
  std::shared_ptr<FaultStats> stats_;
  std::unique_ptr<ClusterBackend> cluster_;
};

// The ISSUE acceptance scenario: a 3-shard R=2 cluster keeps accepting
// writes while one shard is killed mid-run, with ZERO failed client ops
// and byte-identical data on readback.
TEST(ClusterFault, KillOneShardMidWriteLosesNothing) {
  NexusdCluster fx(3);
  ClusterBackend& c = fx.cluster();

  auto payload = [](int i) {
    Bytes data;
    for (int j = 0; j < 64; ++j) {
      data.push_back(static_cast<std::uint8_t>((i * 131 + j) & 0xff));
    }
    return data;
  };

  // Phase 1: all shards alive.
  for (int i = 0; i < 30; ++i) {
    const Bytes data = payload(i);
    ASSERT_TRUE(
        c.Put("obj-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }

  // Kill one shard "mid-write", then keep writing new objects AND
  // overwriting old ones. Every op must still succeed (sloppy quorum).
  fx.KillShard(1);
  for (int i = 30; i < 60; ++i) {
    const Bytes data = payload(i);
    ASSERT_TRUE(
        c.Put("obj-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }
  for (int i = 0; i < 10; ++i) {
    const Bytes data = payload(i + 1000);
    ASSERT_TRUE(
        c.Put("obj-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }

  // Byte-identical readback of every object, old and new.
  for (int i = 0; i < 60; ++i) {
    const Bytes expect = payload(i < 10 ? i + 1000 : i);
    const auto got = c.Get("obj-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), expect) << i;
  }

  const ClusterCounters counters = c.counters();
  EXPECT_EQ(counters.quorum_failures, 0u);
  EXPECT_GT(counters.failovers, 0u);
  EXPECT_GT(counters.shard_failures, 0u);
  EXPECT_EQ(counters.shards_ejected, 1u);
}

// Deterministic mid-write fault schedule: one shard's transport drops
// every request frame. The quorum outcome is EXACT: every write commits
// through the two healthy shards, no ambiguity leaks to the caller, and
// the faulty shard's store stays empty.
TEST(ClusterFault, DroppedRequestsOnOneReplicaStillCommitQuorum) {
  FaultSpec spec;
  spec.drop_request = 1.0;
  NexusdCluster fx(3, spec, /*seed=*/42, /*faulty_shard=*/2);
  ClusterBackend& c = fx.cluster();

  for (int i = 0; i < 20; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 9};
    ASSERT_TRUE(
        c.Put("d-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(c.Get("d-" + std::to_string(i)).value(),
              (Bytes{static_cast<std::uint8_t>(i), 9}))
        << i;
  }
  EXPECT_GT(fx.fault_stats().dropped_requests.load(), 0u);
  // Nothing ever reached the faulty shard's store.
  EXPECT_EQ(fx.store(2).object_count(), 0u);
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// Ambiguous outcomes (response swallowed AFTER the server applied the
// write) are safe: envelope versions make replays idempotent, so the
// quorum result is exact even when individual RPCs are ambiguous.
TEST(ClusterFault, DroppedResponsesAreIdempotentUnderRetry) {
  FaultSpec spec;
  spec.drop_response = 0.4;
  NexusdCluster fx(3, spec, /*seed=*/7, /*faulty_shard=*/0);
  ClusterBackend& c = fx.cluster();

  for (int i = 0; i < 15; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(
        c.Put("a-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(c.Get("a-" + std::to_string(i)).value(),
              Bytes{static_cast<std::uint8_t>(i)})
        << i;
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// A shard that restarts EMPTY on its old port is healed: reads repair
// the objects a quorum still holds, and a rebalance pass restores full
// replication for everything else.
TEST(ClusterFault, ShardRestartingEmptyIsHealedByRepairAndRebalance) {
  NexusdCluster fx(3);
  ClusterBackend& c = fx.cluster();

  for (int i = 0; i < 25; ++i) {
    const Bytes data{static_cast<std::uint8_t>(i), 3, 7};
    ASSERT_TRUE(
        c.Put("r-" + std::to_string(i), ByteSpan(data.data(), data.size()))
            .ok())
        << i;
  }
  fx.RestartShardEmpty(0);

  // Every object still reads correctly (quorum covers the hole)...
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(c.Get("r-" + std::to_string(i)).value(),
              (Bytes{static_cast<std::uint8_t>(i), 3, 7}))
        << i;
  }
  // ...and a rebalance pass restores R replicas everywhere.
  c.RebalanceNow();
  std::size_t total_replicas = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    total_replicas += fx.store(s).object_count();
  }
  EXPECT_EQ(total_replicas, 2u * 25u);
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// ---- streaming replicated puts under faults ---------------------------------

// Deterministic payload generator shared by the streaming fault tests so
// byte-identical readback can be checked without holding a second copy.
std::uint8_t StreamByte(std::size_t i) {
  return static_cast<std::uint8_t>((i * 1315423911u) >> 13);
}

// Kill -9 one replica while a streaming put is mid-flight: with R=3 the
// put still commits by quorum, the readback is byte-identical, and the
// killed owner's missed write drains back to it through hinted handoff —
// with zero read-repair involvement.
TEST(ClusterFault, KillReplicaMidStreamingPutCommitsQuorumAndDrainsHint) {
  ClusterOptions options = FastClusterOptions();
  options.replication = 3; // every shard owns every key
  NexusdCluster fx(3, {}, /*seed=*/1, /*faulty_shard=*/SIZE_MAX, options);
  ClusterBackend& c = fx.cluster();

  constexpr std::size_t kSegment = 64 * 1024;
  Bytes seg(kSegment);
  std::size_t off = 0;
  const auto fill = [&] {
    for (std::size_t j = 0; j < kSegment; ++j) seg[j] = StreamByte(off++);
  };

  auto stream = c.OpenUnbufferedPutStream("streamed").value();
  for (int i = 0; i < 4; ++i) {
    fill();
    ASSERT_TRUE(stream->Append(ByteSpan(seg.data(), seg.size())).ok()) << i;
  }
  fx.KillShard(1); // SIGKILL-equivalent: sockets die mid-stream
  for (int i = 4; i < 16; ++i) {
    fill();
    ASSERT_TRUE(stream->Append(ByteSpan(seg.data(), seg.size())).ok()) << i;
  }
  ASSERT_TRUE(stream->Commit().ok());

  const auto got = c.Get("streamed");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().size(), off);
  for (std::size_t j = 0; j < off; ++j) {
    ASSERT_EQ(got.value()[j], StreamByte(j)) << j;
  }

  const ClusterCounters counters = c.counters();
  EXPECT_EQ(counters.quorum_failures, 0u);
  EXPECT_GT(counters.stream_put_replica_aborts, 0u);
  EXPECT_GT(counters.handoff_hints_recorded, 0u);

  // The killed shard restarts EMPTY on its old port; the handoff drainer
  // replays the write it slept through.
  fx.RestartShardEmpty(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100)); // backoff
  c.DrainHandoffNow();
  EXPECT_GT(c.counters().handoff_hints_replayed, 0u);
  EXPECT_TRUE(fx.store(1).Exists("streamed"));
  EXPECT_EQ(c.counters().read_repairs, 0u);
}

// Deterministic FaultyTransport schedule swallowing responses on one
// replica — including stream Begin/Append/Commit verdicts. Every put
// still commits exactly through the two clean shards, readback stays
// byte-identical, and a drain settles any hints the ambiguity recorded
// (a commit the server applied but the client could not see dedupes as
// "owner already has this version").
TEST(ClusterFault, SwallowedStreamVerdictsStayExactAndDrainClean) {
  FaultSpec spec;
  spec.drop_response = 0.35;
  ClusterOptions options = FastClusterOptions();
  options.replication = 3;
  NexusdCluster fx(3, spec, /*seed=*/5, /*faulty_shard=*/2, options);
  ClusterBackend& c = fx.cluster();

  constexpr std::size_t kSegment = 8 * 1024;
  constexpr int kObjects = 10;
  constexpr int kSegments = 4;
  Bytes seg(kSegment);
  for (int i = 0; i < kObjects; ++i) {
    auto stream =
        c.OpenUnbufferedPutStream("s-" + std::to_string(i)).value();
    for (int k = 0; k < kSegments; ++k) {
      const std::size_t base = (i * kSegments + k) * kSegment;
      for (std::size_t j = 0; j < kSegment; ++j) {
        seg[j] = StreamByte(base + j);
      }
      ASSERT_TRUE(stream->Append(ByteSpan(seg.data(), seg.size())).ok())
          << i << "/" << k;
    }
    ASSERT_TRUE(stream->Commit().ok()) << i;
  }
  EXPECT_GT(fx.fault_stats().dropped_responses.load(), 0u);

  c.DrainHandoffNow();
  for (int i = 0; i < kObjects; ++i) {
    const auto got = c.Get("s-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    ASSERT_EQ(got.value().size(), std::size_t{kSegments} * kSegment) << i;
    for (std::size_t j = 0; j < got.value().size(); ++j) {
      ASSERT_EQ(got.value()[j],
                StreamByte(i * kSegments * kSegment + j))
          << i << "@" << j;
    }
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// ---- CI loopback smoke (env-gated) ------------------------------------------
//
// Driven by the CI "cluster smoke" step against REAL nexusd binaries:
// NEXUS_CLUSTER / NEXUS_REPLICATION select the fleet, WritePhase runs
// with all shards up, CI kills one shard, then ReadbackPhase must keep
// writing AND read every phase-1 object back byte-identical — zero
// failed client ops across the kill. Both tests skip without the env.

Bytes SmokePayload(int i) {
  Bytes data;
  for (int j = 0; j < 48; ++j) {
    data.push_back(static_cast<std::uint8_t>((i * 37 + j * 11) & 0xff));
  }
  return data;
}

ClusterOptions SmokeOptions() {
  ClusterOptions options;
  options.writer_id = 29;
  options.eject_after = 2;
  options.background_rebalance = false;
  return options;
}

TEST(ClusterSmokeEnv, WritePhase) {
  if (std::getenv("NEXUS_CLUSTER") == nullptr) {
    GTEST_SKIP() << "NEXUS_CLUSTER not set";
  }
  auto cluster = ClusterBackend::Connect("", SmokeOptions(),
                                         FastClientOptions());
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterBackend& c = **cluster;
  for (int i = 0; i < 40; ++i) {
    const Bytes data = SmokePayload(i);
    ASSERT_TRUE(c.Put("smoke-" + std::to_string(i),
                      ByteSpan(data.data(), data.size()))
                    .ok())
        << i;
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

TEST(ClusterSmokeEnv, ReadbackPhase) {
  if (std::getenv("NEXUS_CLUSTER") == nullptr) {
    GTEST_SKIP() << "NEXUS_CLUSTER not set";
  }
  auto cluster = ClusterBackend::Connect("", SmokeOptions(),
                                         FastClientOptions());
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterBackend& c = **cluster;
  // Keep writing with a shard down...
  for (int i = 40; i < 60; ++i) {
    const Bytes data = SmokePayload(i);
    ASSERT_TRUE(c.Put("smoke-" + std::to_string(i),
                      ByteSpan(data.data(), data.size()))
                    .ok())
        << i;
  }
  // ...and read EVERYTHING back byte-identical, including the phase-1
  // objects whose preference lists crossed the dead shard.
  for (int i = 0; i < 60; ++i) {
    const auto got = c.Get("smoke-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), SmokePayload(i)) << i;
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// Streams one large object through OpenUnbufferedPutStream and pins the
// client's peak RSS: the put must stay O(window), not O(object). CI sets
// NEXUS_SMOKE_RSS_CAP_MB as a hard cap; the byte-identical readback runs
// AFTER the RSS sample so the Get's materialization cannot mask a
// buffering regression in the put path.
TEST(ClusterSmokeEnv, StreamingPutUnderMemoryCap) {
  if (std::getenv("NEXUS_CLUSTER") == nullptr) {
    GTEST_SKIP() << "NEXUS_CLUSTER not set";
  }
  auto cluster = ClusterBackend::Connect("", SmokeOptions(),
                                         FastClientOptions());
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterBackend& c = **cluster;

  constexpr std::size_t kSegment = 256 * 1024;
  constexpr std::size_t kSegments = 192; // 48 MiB object
  Bytes seg(kSegment);
  auto stream = c.OpenUnbufferedPutStream("smoke-large").value();
  for (std::size_t k = 0; k < kSegments; ++k) {
    for (std::size_t j = 0; j < kSegment; ++j) {
      seg[j] = StreamByte(k * kSegment + j);
    }
    ASSERT_TRUE(stream->Append(ByteSpan(seg.data(), seg.size())).ok()) << k;
  }
  ASSERT_TRUE(stream->Commit().ok());

  struct rusage ru {};
  ASSERT_EQ(getrusage(RUSAGE_SELF, &ru), 0);
  const long peak_mb = ru.ru_maxrss / 1024; // ru_maxrss is KiB on Linux
  std::printf("streaming put peak RSS: %ld MB\n", peak_mb);
  if (const char* cap = std::getenv("NEXUS_SMOKE_RSS_CAP_MB")) {
    EXPECT_LE(peak_mb, std::atol(cap))
        << "streamed put exceeded the client memory cap";
  }

  const auto got = c.Get("smoke-large");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().size(), kSegments * kSegment);
  for (std::size_t j = 0; j < got.value().size(); ++j) {
    ASSERT_EQ(got.value()[j], StreamByte(j)) << j;
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

// Runs after CI restarts the killed shard: drains the handoff hints the
// ReadbackPhase writes parked on the survivors. The follow-up
// `nexus-stat --cluster` grep for "handoff hints pending: 0" proves the
// fleet is hint-free afterwards.
TEST(ClusterSmokeEnv, HandoffDrainPhase) {
  if (std::getenv("NEXUS_CLUSTER") == nullptr) {
    GTEST_SKIP() << "NEXUS_CLUSTER not set";
  }
  auto cluster = ClusterBackend::Connect("", SmokeOptions(),
                                         FastClientOptions());
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterBackend& c = **cluster;
  c.DrainHandoffNow();
  const ClusterCounters counters = c.counters();
  // The kill window covered writes whose owner sets include the dead
  // shard, so there must have been hints to settle (replayed to the
  // returned owner, or dropped as superseded).
  EXPECT_GT(counters.handoff_hints_replayed + counters.handoff_hints_dropped,
            0u);
  // Everything still reads back byte-identical after the drain.
  for (int i = 0; i < 60; ++i) {
    const auto got = c.Get("smoke-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), SmokePayload(i)) << i;
  }
  EXPECT_EQ(c.counters().quorum_failures, 0u);
}

} // namespace
} // namespace nexus::cluster
