// Invariant suite for the span tracer (DESIGN.md §7): span balance across
// the full NexusClient -> enclave -> storage stack, Chrome-trace JSON
// round-trips, the disabled-path zero-allocation guarantee, and the
// latency decomposition the evaluation's Table 5a breakdown relies on.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <utility>

#include "core/metadata_store.hpp"
#include "test_env.hpp"

// ---- global allocation counter ----------------------------------------------
// Replaces the binary's global operator new to count heap allocations, so
// the "tracing disabled costs nothing" claim is asserted, not assumed.

// GCC pairs the replaced operator new (malloc-backed) with the library
// deallocator and warns spuriously; malloc/free do match here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nexus {
namespace {

/// Enables tracing for one test and restores the previous state (plus a
/// clean slate of spans and global histograms) afterwards.
class ScopedTracing {
 public:
  ScopedTracing() : was_enabled_(trace::Enabled()) {
    trace::SetEnabled(true);
    trace::ResetTrace();
    trace::ResetGlobalHistograms();
  }
  ~ScopedTracing() {
    trace::SetEnabled(was_enabled_);
    trace::ResetTrace();
    trace::ResetGlobalHistograms();
  }

 private:
  bool was_enabled_;
};

std::vector<trace::SpanRecord> SpansInCategory(
    const std::vector<trace::SpanRecord>& spans, std::string_view category) {
  std::vector<trace::SpanRecord> out;
  for (const auto& s : spans) {
    if (category == s.category) out.push_back(s);
  }
  return out;
}

class TraceStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &world_.AddMachine("owen");
    auto handle = machine_->nexus->CreateVolume(machine_->user);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = std::move(handle).value();
    // Volume creation produced spans of its own; measure workloads from a
    // clean slate.
    trace::ResetTrace();
    trace::ResetGlobalHistograms();
  }

  core::NexusClient& fs() { return *machine_->nexus; }

  ScopedTracing tracing_; // before world_: tracer on while machines exist
  test::World world_;
  test::Machine* machine_ = nullptr;
  core::NexusClient::VolumeHandle handle_;
};

// ---- span balance -----------------------------------------------------------

TEST_F(TraceStackTest, EveryEcallEmitsExactlyOneSpan) {
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(fs().Touch("f" + std::to_string(i)).ok());
  }
  const auto spans = trace::TraceSnapshot();
  std::uint64_t touch_spans = 0;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "ecall:touch") ++touch_spans;
  }
  EXPECT_EQ(touch_spans, static_cast<std::uint64_t>(kOps));

  // Every ecall wrapper produced exactly one span: the aggregate "ecall"
  // histogram and the span buffer agree on the ecall count.
  const auto ecall_spans = SpansInCategory(spans, "ecall");
  EXPECT_EQ(ecall_spans.size(), trace::GlobalHistogram("ecall").Count());
  EXPECT_EQ(trace::DroppedSpanCount(), 0u);
}

TEST_F(TraceStackTest, NestingIsWellFormedAcrossOcallReentry) {
  ASSERT_TRUE(fs().WriteFile("nested", Bytes(4096, 7)).ok());
  ASSERT_TRUE(fs().ReadFile("nested").ok());

  const auto spans = trace::TraceSnapshot();
  ASSERT_FALSE(SpansInCategory(spans, "ecall").empty());
  ASSERT_FALSE(SpansInCategory(spans, "ocall").empty());

  // Ecalls issued from the test thread sit at depth 0; ocall spans are
  // always nested inside an ecall, so their depth is strictly greater.
  for (const auto& s : SpansInCategory(spans, "ecall")) {
    EXPECT_EQ(s.depth, 0u) << s.name;
  }
  for (const auto& s : SpansInCategory(spans, "ocall")) {
    EXPECT_GE(s.depth, 1u) << s.name;
  }

  // Containment: every ocall span lies within the real-time extent of an
  // enclosing ecall span on the same thread (the RAII guards balanced even
  // though the ocall re-entered untrusted code).
  for (const auto& o : SpansInCategory(spans, "ocall")) {
    bool contained = false;
    for (const auto& e : SpansInCategory(spans, "ecall")) {
      if (e.thread_id == o.thread_id && e.start_ns <= o.start_ns &&
          o.start_ns + o.dur_ns <= e.start_ns + e.dur_ns) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << o.name << " not contained in any ecall span";
  }
}

TEST_F(TraceStackTest, ProfileSnapshotExposesTraceCounters) {
  const auto before = fs().Profile();
  ASSERT_TRUE(fs().Touch("profiled").ok());
  const auto after = fs().Profile();
  const auto delta = after - before;
  EXPECT_GE(delta.trace_spans, 1u);
  EXPECT_GE(delta.ecall_latency.count, 1u);
  // Percentile gauges survive the delta (they keep the later sample).
  EXPECT_EQ(delta.ecall_latency.p50_ms, after.ecall_latency.p50_ms);
}

// ---- Chrome trace JSON ------------------------------------------------------

TEST_F(TraceStackTest, ChromeJsonRoundTripsSpanCounts) {
  ASSERT_TRUE(fs().Mkdir("dir").ok());
  ASSERT_TRUE(fs().WriteFile("dir/file", Bytes(1024, 3)).ok());

  const auto spans = trace::TraceSnapshot();
  ASSERT_FALSE(spans.empty());
  const std::string json = trace::ChromeTraceJson();
  auto parsed = trace::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), spans.size());

  // Per-(name, category) multiplicities survive the round trip.
  std::map<std::pair<std::string, std::string>, int> want;
  std::map<std::pair<std::string, std::string>, int> got;
  for (const auto& s : spans) ++want[{s.name, s.category}];
  for (const auto& p : parsed.value()) ++got[{p.name, p.category}];
  EXPECT_EQ(want, got);

  // Exported timestamps are normalized (non-negative, microseconds).
  for (const auto& p : parsed.value()) {
    EXPECT_GE(p.ts_us, 0.0);
    EXPECT_GE(p.dur_us, 0.0);
    EXPECT_GT(p.thread_id, 0u);
  }
}

TEST_F(TraceStackTest, WriteChromeTraceProducesParseableFile) {
  ASSERT_TRUE(fs().Touch("dumped").ok());
  const std::string path = ::testing::TempDir() + "nexus_trace_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  auto parsed = trace::ParseChromeTrace(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), trace::TraceSnapshot().size());
}

TEST(TraceJson, ParserRejectsGarbage) {
  EXPECT_FALSE(trace::ParseChromeTrace("").ok());
  EXPECT_FALSE(trace::ParseChromeTrace("not json").ok());
  EXPECT_FALSE(trace::ParseChromeTrace("{\"traceEvents\":42}").ok());
  EXPECT_FALSE(trace::ParseChromeTrace("[1,2,3]").ok());
  // Structurally valid but empty is fine.
  auto empty = trace::ParseChromeTrace("{\"traceEvents\":[]}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

// ---- latency decomposition (§VII-A) -----------------------------------------

TEST_F(TraceStackTest, SimDurationsDecomposeIoTimeByAccount) {
  // Serial crypto so enclave accounting has no modeled parallel savings.
  ASSERT_TRUE(fs().SetCryptoWorkers(0).ok());
  trace::ResetTrace();
  const auto p0 = fs().Profile();

  const Bytes payload(512 * 1024, 9);
  ASSERT_TRUE(fs().WriteFile("decomp", payload).ok());
  machine_->afs->FlushCache();
  fs().enclave().EcallDropCaches();
  ASSERT_TRUE(fs().ReadFile("decomp").ok());

  const auto p1 = fs().Profile();
  const auto spans = trace::TraceSnapshot();

  // Sum the virtual time inside io: spans per category; each category is
  // the SimClock account the wrapped Attribution charges, so the span sums
  // must reproduce the profiler's per-account deltas.
  auto sim_sum = [&](const char* category) {
    double total = 0;
    for (const auto& s : SpansInCategory(spans, category)) total += s.sim_dur_s;
    return total;
  };
  const struct {
    const char* account;
    double profile_delta;
  } rows[] = {
      {core::kMetaIoAccount, p1.metadata_io_seconds - p0.metadata_io_seconds},
      {core::kDataIoAccount, p1.data_io_seconds - p0.data_io_seconds},
      {core::kJournalIoAccount, p1.journal_io_seconds - p0.journal_io_seconds},
  };
  for (const auto& row : rows) {
    const double from_spans = sim_sum(row.account);
    ASSERT_GT(row.profile_delta, 0.0) << row.account;
    const double tolerance = std::max(0.05 * row.profile_delta, 1e-6);
    EXPECT_NEAR(from_spans, row.profile_delta, tolerance) << row.account;
  }
}

// ---- disabled path ----------------------------------------------------------

TEST(TraceDisabled, SpansCostNoAllocationsAndRecordNothing) {
  ASSERT_FALSE(trace::Enabled()) << "test requires tracing off";
  const std::uint64_t spans_before = trace::CompletedSpanCount();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    trace::Span span("disabled", "test");
    span.SetCorrelation(42);
  }
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after, allocs_before)
      << "disabled spans must not touch the heap";
  EXPECT_EQ(trace::CompletedSpanCount(), spans_before);
}

TEST(TraceDisabled, CompleteSpanIsIgnoredWhenOff) {
  ASSERT_FALSE(trace::Enabled());
  const std::uint64_t before = trace::CompletedSpanCount();
  trace::CompleteSpan("ignored", "test", 0, 100);
  EXPECT_EQ(trace::CompletedSpanCount(), before);
}

// ---- manual span API --------------------------------------------------------

TEST(TraceManual, CompleteSpanAndCorrelationSurviveExport) {
  ScopedTracing tracing;
  {
    trace::Span outer("outer", "manual");
    outer.SetCorrelation(7);
    trace::Span inner("inner", "manual");
    inner.SetCorrelation(8);
  }
  trace::CompleteSpan("external", "manual", 1000, 500, 9);

  const auto spans = trace::TraceSnapshot();
  ASSERT_EQ(spans.size(), 3u);
  std::map<std::string, const trace::SpanRecord*> by_name;
  for (const auto& s : spans) by_name[s.name] = &s;
  ASSERT_TRUE(by_name.count("outer") && by_name.count("inner") &&
              by_name.count("external"));
  EXPECT_EQ(by_name["outer"]->correlation, 7u);
  EXPECT_EQ(by_name["outer"]->depth, 0u);
  EXPECT_EQ(by_name["inner"]->correlation, 8u);
  EXPECT_EQ(by_name["inner"]->depth, 1u);
  EXPECT_EQ(by_name["external"]->dur_ns, 500u);

  auto parsed = trace::ParseChromeTrace(trace::ChromeTraceJson());
  ASSERT_TRUE(parsed.ok());
  bool saw_corr = false;
  for (const auto& p : parsed.value()) {
    if (p.name == "outer") {
      EXPECT_EQ(p.correlation, 7u);
      saw_corr = true;
    }
  }
  EXPECT_TRUE(saw_corr);
}

TEST(TraceManual, ResetTraceZeroesCounters) {
  ScopedTracing tracing;
  { trace::Span span("short", "manual"); }
  EXPECT_EQ(trace::CompletedSpanCount(), 1u);
  trace::ResetTrace();
  EXPECT_EQ(trace::CompletedSpanCount(), 0u);
  EXPECT_TRUE(trace::TraceSnapshot().empty());
  // The thread-local buffer remains usable after the reset.
  { trace::Span span("again", "manual"); }
  EXPECT_EQ(trace::CompletedSpanCount(), 1u);
}

TEST(TraceManual, GlobalHistogramSummariesCoverNamedHistograms) {
  ScopedTracing tracing;
  trace::GlobalHistogram("unit-test.lat").RecordMs(2.0);
  trace::GlobalHistogram("unit-test.lat").RecordMs(2.0);
  const auto summaries = trace::GlobalHistogramSummaries();
  bool found = false;
  for (const auto& s : summaries) {
    if (s.name == "unit-test.lat") {
      found = true;
      EXPECT_EQ(s.count, 2u);
      EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);
      EXPECT_DOUBLE_EQ(s.p99_ms, 2.0);
    }
  }
  EXPECT_TRUE(found);
}

} // namespace
} // namespace nexus
