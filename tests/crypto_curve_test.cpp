// X25519 (RFC 7748) and Ed25519 (RFC 8032) known-answer + property tests.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/rng.hpp"
#include "crypto/x25519.hpp"

namespace nexus::crypto {
namespace {

ByteArray<32> Arr32(std::string_view hex) {
  return ToArray<32>(HexDecode(hex).value());
}
std::string HexOf(ByteSpan b) { return HexEncode(b); }

// RFC 7748 §5.2 test vector 1.
TEST(X25519, Rfc7748Vector1) {
  const auto scalar = Arr32(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = Arr32(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(HexOf(X25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 §5.2 test vector 2.
TEST(X25519, Rfc7748Vector2) {
  const auto scalar = Arr32(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = Arr32(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(HexOf(X25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 §6.1 Diffie-Hellman vector.
TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_priv = Arr32(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = Arr32(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = X25519BasePoint(alice_priv);
  EXPECT_EQ(HexOf(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  const auto bob_pub = X25519BasePoint(bob_priv);
  EXPECT_EQ(HexOf(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto k1 = X25519(alice_priv, bob_pub);
  const auto k2 = X25519(bob_priv, alice_pub);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(HexOf(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretAgreementIsSymmetricForRandomKeys) {
  HmacDrbg rng(AsBytes("x25519"));
  for (int i = 0; i < 8; ++i) {
    const auto a = X25519ClampScalar(rng.Array<32>());
    const auto b = X25519ClampScalar(rng.Array<32>());
    const auto k_ab = X25519(a, X25519BasePoint(b));
    const auto k_ba = X25519(b, X25519BasePoint(a));
    EXPECT_EQ(k_ab, k_ba) << i;
  }
}

// RFC 8032 §7.1 TEST 1 (empty message).
TEST(Ed25519, Rfc8032Test1) {
  const auto seed = Arr32(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto key = Ed25519FromSeed(seed);
  EXPECT_EQ(HexOf(key.public_key),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = Ed25519Sign(key, {});
  EXPECT_EQ(HexOf(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(Ed25519Verify(key.public_key, {}, sig));
}

// RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
TEST(Ed25519, Rfc8032Test2) {
  const auto seed = Arr32(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto key = Ed25519FromSeed(seed);
  EXPECT_EQ(HexOf(key.public_key),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = HexDecode("72").value();
  const auto sig = Ed25519Sign(key, msg);
  EXPECT_EQ(HexOf(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(key.public_key, msg, sig));
}

// RFC 8032 §7.1 TEST 3 (two-byte message af82).
TEST(Ed25519, Rfc8032Test3) {
  const auto seed = Arr32(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  const auto key = Ed25519FromSeed(seed);
  const Bytes msg = HexDecode("af82").value();
  const auto sig = Ed25519Sign(key, msg);
  EXPECT_EQ(HexOf(sig),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(Ed25519Verify(key.public_key, msg, sig));
}

TEST(Ed25519, RejectsTamperedSignatureAndMessage) {
  HmacDrbg rng(AsBytes("ed25519"));
  const auto key = Ed25519FromSeed(rng.Array<32>());
  const Bytes msg = rng.Generate(100);
  const auto sig = Ed25519Sign(key, msg);
  ASSERT_TRUE(Ed25519Verify(key.public_key, msg, sig));

  // Tampered message.
  Bytes bad_msg = msg;
  bad_msg[3] ^= 1;
  EXPECT_FALSE(Ed25519Verify(key.public_key, bad_msg, sig));

  // Tampered signature (R half and S half).
  auto bad_sig = sig;
  bad_sig[0] ^= 1;
  EXPECT_FALSE(Ed25519Verify(key.public_key, msg, bad_sig));
  bad_sig = sig;
  bad_sig[40] ^= 1;
  EXPECT_FALSE(Ed25519Verify(key.public_key, msg, bad_sig));

  // Wrong public key.
  const auto other = Ed25519FromSeed(rng.Array<32>());
  EXPECT_FALSE(Ed25519Verify(other.public_key, msg, sig));
}

TEST(Ed25519, SignaturesAreDeterministic) {
  const auto key = Ed25519FromSeed(ByteArray<32>{1, 2, 3});
  const Bytes msg = ToBytes(std::string_view("determinism"));
  EXPECT_EQ(Ed25519Sign(key, msg), Ed25519Sign(key, msg));
}

} // namespace
} // namespace nexus::crypto
