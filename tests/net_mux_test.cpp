// Pipelined RPC multiplexing: out-of-order responses, windowed failure
// isolation, correlation-desync handling, readahead through the cache
// tier, and v2/v3 interop — all against a live loopback nexusd.
//
// These tests pin the PROTOCOL-level behaviors the mux introduced: a v3
// connection resolves responses by correlation id rather than arrival
// order; a transport failure inside a full window retries only the
// requests that were actually robbed of their response; a desynchronized
// response kills the connection without orphaning its siblings; and every
// combination of v2/v3 client and server still interoperates (lock-step
// singles when either side is legacy).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_counters.hpp"
#include "cache/cached_backend.hpp"
#include "common/bytes.hpp"
#include "net/fault.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus {
namespace {

using net::NexusdOptions;
using net::NexusdServer;
using net::RemoteBackend;
using net::RemoteBackendOptions;

Bytes Blob(char fill, std::size_t n) { return Bytes(n, static_cast<std::uint8_t>(fill)); }

// ---- server-side gate ------------------------------------------------------

// Wraps a MemBackend (which is final) and blocks Get() on selected names
// until released — lets a test hold one RPC open server-side while its
// connection keeps serving others.
class GateBackend final : public storage::StorageBackend {
 public:
  /// Blocks every Get whose name is `gated` until Release(); Gets arriving
  /// before Release() count as waiters (WaitForWaiters observes them).
  explicit GateBackend(std::string gated) : gated_(std::move(gated)) {}

  Result<Bytes> Get(const std::string& name) override {
    if (name == gated_) {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiters_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return inner_.Get(name);
  }
  Status Put(const std::string& name, ByteSpan data) override {
    return inner_.Put(name, data);
  }
  Status Delete(const std::string& name) override { return inner_.Delete(name); }
  bool Exists(const std::string& name) override { return inner_.Exists(name); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }

  /// Blocks until `n` Gets of the gated name are parked inside the server.
  void WaitForWaiters(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiters_ >= n; });
  }
  void Release() {
    const std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  storage::MemBackend& inner() { return inner_; }

 private:
  storage::MemBackend inner_;
  std::string gated_;
  std::mutex mu_;
  std::condition_variable cv_;
  int waiters_ = 0;
  bool released_ = false;
};

// ---- client-side response tampering ----------------------------------------

// Watches outgoing requests for a Get of `victim` and swallows exactly one
// response carrying its correlation id. State is shared across reconnects
// so the retry's response passes through.
class DropVictimResponse final : public net::Transport {
 public:
  struct Shared {
    std::mutex mu;
    std::uint64_t victim_corr = 0;
    bool armed = false;
    bool dropped = false;
  };

  DropVictimResponse(std::unique_ptr<net::Transport> inner,
                     std::shared_ptr<Shared> shared, std::string victim)
      : inner_(std::move(inner)),
        shared_(std::move(shared)),
        victim_(std::move(victim)) {}

  Status SendFrame(ByteSpan payload) override {
    Reader reader(payload);
    std::uint64_t corr = 0;
    const auto rpc = net::ParseRequestHead(reader, &corr);
    if (rpc.ok() && rpc.value() == net::Rpc::kGet) {
      const auto name = reader.Str();
      if (name.ok() && name.value() == victim_) {
        const std::lock_guard<std::mutex> lock(shared_->mu);
        if (!shared_->dropped) {
          shared_->victim_corr = corr;
          shared_->armed = true;
        }
      }
    }
    return inner_->SendFrame(payload);
  }

  Result<Bytes> RecvFrame() override {
    for (;;) {
      auto frame = inner_->RecvFrame();
      if (!frame.ok()) return frame;
      {
        const std::lock_guard<std::mutex> lock(shared_->mu);
        if (shared_->armed && !shared_->dropped &&
            net::ResponseCorrelation(frame.value()) == shared_->victim_corr) {
          shared_->dropped = true;
          continue; // the one stolen response; everything else flows
        }
      }
      return frame;
    }
  }

  void Close() override { inner_->Close(); }
  void Shutdown() override { inner_->Shutdown(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::shared_ptr<Shared> shared_;
  std::string victim_;
};

// Once armed (two Gets seen on the wire), overwrites the correlation id of
// the next response with an id no request ever used — the demux must treat
// the stream as desynchronized and fail the whole connection.
class CorruptNextCorrelation final : public net::Transport {
 public:
  struct Shared {
    std::atomic<int> gets_sent{0};
    std::atomic<bool> corrupted{false};
  };

  CorruptNextCorrelation(std::unique_ptr<net::Transport> inner,
                         std::shared_ptr<Shared> shared)
      : inner_(std::move(inner)), shared_(std::move(shared)) {}

  Status SendFrame(ByteSpan payload) override {
    if (net::RequestRpc(payload) == net::Rpc::kGet) shared_->gets_sent++;
    return inner_->SendFrame(payload);
  }

  Result<Bytes> RecvFrame() override {
    auto frame = inner_->RecvFrame();
    if (!frame.ok()) return frame;
    Bytes bytes = std::move(frame).value();
    // Response head: u8 version, u64 correlation. Clobber the correlation
    // once both Gets are known to be in flight.
    if (bytes.size() >= 9 && shared_->gets_sent.load() >= 2 &&
        !shared_->corrupted.exchange(true)) {
      for (std::size_t i = 1; i <= 8; ++i) bytes[i] = 0xFF;
    }
    return bytes;
  }

  void Close() override { inner_->Close(); }
  void Shutdown() override { inner_->Shutdown(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::shared_ptr<Shared> shared_;
};

// ---- out-of-order responses ------------------------------------------------

TEST(NetMux, OutOfOrderRepliesResolveByCorrelation) {
  GateBackend backend("slow");
  ASSERT_TRUE(backend.inner().Put("slow", Blob('s', 512)).ok());
  ASSERT_TRUE(backend.inner().Put("fast", Blob('f', 128)).ok());

  NexusdOptions server_options;
  server_options.workers = 2;
  server_options.rpc_workers = 4;
  auto server = NexusdServer::Start(backend, server_options).value();

  RemoteBackendOptions options;
  options.rpc_window = 4;
  options.max_pooled_connections = 1;
  auto remote = RemoteBackend::Connect("127.0.0.1", server->port(), options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  RemoteBackend& client = *remote.value();
  ASSERT_EQ(client.peer_version(), net::kProtocolVersion);

  std::thread slow_reader([&] {
    EXPECT_EQ(client.Get("slow").value(), Blob('s', 512));
  });
  backend.WaitForWaiters(1); // "slow" is parked inside the server

  // The SAME connection answers "fast" while "slow" is still open: the
  // fast response overtakes the slow one and the demux routes each to its
  // caller by correlation id.
  EXPECT_EQ(client.Get("fast").value(), Blob('f', 128));

  backend.Release();
  slow_reader.join();

  EXPECT_EQ(client.counters().retries, 0u);
  // One TCP connection carried everything — overtaking happened inside
  // one multiplexed stream, not across parallel connections.
  EXPECT_EQ(server->stats().connections_accepted, 1u);
  server->Stop();
}

// ---- failure isolation inside a window -------------------------------------

TEST(NetMux, DroppedResponseInFullWindowRetriesOnlyThatRequest) {
  storage::MemBackend backend;
  const std::vector<std::string> names = {"a", "b", "c", "victim"};
  for (const auto& name : names) {
    ASSERT_TRUE(backend.Put(name, Blob(name[0], 256)).ok());
  }

  auto server = NexusdServer::Start(backend).value();

  auto shared = std::make_shared<DropVictimResponse::Shared>();
  RemoteBackendOptions options;
  options.rpc_window = 4;
  options.max_pooled_connections = 1;
  options.sleep_ms = [](int) {}; // don't serve real backoff in a test
  const std::uint16_t port = server->port();
  RemoteBackend client(
      [port, shared]() -> Result<std::unique_ptr<net::Transport>> {
        // Short recv deadline: the demux notices the stolen response fast.
        auto tcp = net::TcpTransport::Dial("127.0.0.1", port, 2000, 250);
        if (!tcp.ok()) return tcp.status();
        return Result<std::unique_ptr<net::Transport>>(
            std::make_unique<DropVictimResponse>(std::move(tcp).value(),
                                                 shared, "victim"));
      },
      options);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_EQ(client.peer_version(), net::kProtocolVersion);

  // Fill the window: four concurrent Gets on one connection, one of which
  // loses its response. The other three must complete from the original
  // connection; only the victim may retry.
  std::vector<std::thread> readers;
  readers.reserve(names.size());
  for (const auto& name : names) {
    readers.emplace_back([&client, name] {
      EXPECT_EQ(client.Get(name).value(), Blob(name[0], 256));
    });
  }
  for (auto& t : readers) t.join();

  EXPECT_TRUE(shared->dropped);
  EXPECT_EQ(client.counters().retries, 1u);    // the victim, nobody else
  EXPECT_EQ(client.counters().reconnects, 1u); // one fresh dial for it
  server->Stop();
}

TEST(NetMux, CorrelationMismatchDropsConnectionWithoutOrphans) {
  GateBackend backend("a"); // barrier below uses WaitForWaiters on "a"
  ASSERT_TRUE(backend.inner().Put("a", Blob('a', 300)).ok());
  ASSERT_TRUE(backend.inner().Put("b", Blob('b', 301)).ok());

  NexusdOptions server_options;
  server_options.rpc_workers = 2;
  auto server = NexusdServer::Start(backend, server_options).value();

  auto shared = std::make_shared<CorruptNextCorrelation::Shared>();
  RemoteBackendOptions options;
  options.rpc_window = 4;
  options.max_pooled_connections = 1;
  options.sleep_ms = [](int) {};
  const std::uint16_t port = server->port();
  RemoteBackend client(
      [port, shared]() -> Result<std::unique_ptr<net::Transport>> {
        auto tcp = net::TcpTransport::Dial("127.0.0.1", port, 2000, 2000);
        if (!tcp.ok()) return tcp.status();
        return Result<std::unique_ptr<net::Transport>>(
            std::make_unique<CorruptNextCorrelation>(std::move(tcp).value(),
                                                     shared));
      },
      options);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_EQ(client.peer_version(), net::kProtocolVersion);

  // Hold "a" open server-side until both Gets are in flight, so the
  // corrupted response provably has a sibling outstanding.
  std::thread reader_a([&] {
    EXPECT_EQ(client.Get("a").value(), Blob('a', 300));
  });
  backend.WaitForWaiters(1);
  std::thread reader_b([&] {
    EXPECT_EQ(client.Get("b").value(), Blob('b', 301));
  });
  while (shared->gets_sent.load() < 2) std::this_thread::yield();
  backend.Release();
  reader_a.join();
  reader_b.join();

  // The poisoned frame killed the connection; BOTH in-flight requests
  // failed over and retried rather than one hanging forever orphaned.
  EXPECT_TRUE(shared->corrupted.load());
  EXPECT_EQ(client.counters().retries, 2u);
  EXPECT_GE(client.counters().reconnects, 1u);
  server->Stop();
}

// ---- concurrent window soak (run under TSan in CI) --------------------------

TEST(NetMux, ConcurrentWindowSoak) {
  storage::MemBackend backend;
  NexusdOptions server_options;
  server_options.workers = 4;
  server_options.rpc_workers = 4;
  auto server = NexusdServer::Start(backend, server_options).value();

  constexpr std::size_t kBudget = 1u << 20;
  RemoteBackendOptions options;
  options.rpc_window = 16;
  options.max_pooled_connections = 2;
  options.readahead_budget_bytes = kBudget;
  auto remote = RemoteBackend::Connect("127.0.0.1", server->port(), options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  RemoteBackend* raw = remote.value().get();
  cache::CacheOptions cache_options;
  cache_options.mem_budget_bytes = kBudget;
  cache::CachedBackend client(std::move(remote).value(), cache_options);
  EXPECT_TRUE(client.lease_mode()); // loopback v4: soak covers leases too

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&client, id] {
      // Private name space per thread: every expectation is deterministic
      // even though all threads share the window.
      std::map<std::string, Bytes> model;
      for (int k = 0; k < kOpsPerThread; ++k) {
        const std::string name =
            "t" + std::to_string(id) + "-" + std::to_string(k % 6);
        switch (k % 5) {
          case 0: {
            Bytes data = Blob(static_cast<char>('A' + id), 64 + k);
            ASSERT_TRUE(client.Put(name, data).ok());
            model[name] = std::move(data);
            break;
          }
          case 1: {
            auto got = client.Get(name);
            const auto it = model.find(name);
            if (it == model.end()) {
              EXPECT_EQ(got.status().code(), ErrorCode::kNotFound);
            } else {
              EXPECT_EQ(got.value(), it->second);
            }
            break;
          }
          case 2:
            EXPECT_EQ(client.Exists(name), model.count(name) == 1);
            break;
          case 3: {
            std::vector<std::string> batch;
            for (int j = 0; j < 3; ++j) {
              batch.push_back("t" + std::to_string(id) + "-" +
                              std::to_string((k + j) % 6));
            }
            const auto results = client.MultiGet(batch);
            ASSERT_EQ(results.size(), batch.size());
            for (std::size_t j = 0; j < batch.size(); ++j) {
              const auto it = model.find(batch[j]);
              if (it == model.end()) {
                EXPECT_EQ(results[j].status().code(), ErrorCode::kNotFound);
              } else {
                EXPECT_EQ(results[j].value(), it->second);
              }
            }
            break;
          }
          default:
            client.Prefetch(name); // advisory; next Get may consume it
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const net::NetCounters counters = raw->counters();
  EXPECT_EQ(counters.retries, 0u); // loopback is clean
  EXPECT_GT(counters.rpcs, 0u);
  EXPECT_LE(client.mem_bytes(), kBudget);
  ASSERT_TRUE(client.Flush().ok()); // drain writeback before Stop
  server->Stop();
}

// ---- readahead budget ------------------------------------------------------

TEST(NetMux, ReadaheadEvictionStaysUnderBudget) {
  cache::ResetGlobalCacheCounters();
  storage::MemBackend backend;
  const std::size_t kObject = 4096;
  for (char c : {'w', 'x', 'y', 'z'}) {
    ASSERT_TRUE(backend.Put(std::string(1, c), Blob(c, kObject)).ok());
  }
  // Strictly in-order replies: this test reasons about WHICH prefetched
  // entries the LRU keeps, so prefetch deliveries must land in issue
  // order. Pooled handlers may legally reorder replies (v3), which would
  // leave a different pair resident.
  NexusdOptions server_options;
  server_options.rpc_workers = 0;
  auto server = NexusdServer::Start(backend, server_options).value();

  // Cache budget fits TWO buffered 4 KiB objects but not four: completing
  // four prefetches must evict LRU-oldest entries as wasted bytes.
  constexpr std::size_t kBudget = 8192;
  RemoteBackendOptions options;
  options.rpc_window = 8;
  options.max_pooled_connections = 1;
  auto remote = RemoteBackend::Connect("127.0.0.1", server->port(), options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote.value()->peer_version(), net::kProtocolVersion);
  cache::CacheOptions cache_options;
  cache_options.mem_budget_bytes = kBudget;
  cache::CachedBackend client(std::move(remote).value(), cache_options);

  for (char c : {'w', 'x', 'y', 'z'}) client.Prefetch(std::string(1, c));

  // Prefetches complete on the demux thread; wait until the budget has
  // provably forced at least one eviction.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cache::GlobalCacheSnapshot().prefetch_issued >= 4 &&
        client.counters().prefetch_wasted_bytes > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(cache::GlobalCacheSnapshot().prefetch_issued, 4u);
  EXPECT_GE(client.counters().prefetch_wasted_bytes, kObject); // one object
  EXPECT_LE(client.mem_bytes(), kBudget);

  // Every demand read is still correct — evicted entries just fall back to
  // the wire — and at least one surviving entry serves as a hit. Read
  // newest-first: the LRU keeps the LAST prefetches, and refilling an
  // evicted name would itself evict a survivor before it was read.
  for (char c : {'z', 'y', 'x', 'w'}) {
    EXPECT_EQ(client.Get(std::string(1, c)).value(), Blob(c, kObject));
  }
  EXPECT_GE(client.counters().prefetch_hits, 1u);
  EXPECT_LE(client.mem_bytes(), kBudget);
  server->Stop();
}

// ---- version interop -------------------------------------------------------

TEST(NetMux, V3ClientFallsBackAgainstV2Server) {
  storage::MemBackend backend;
  ASSERT_TRUE(backend.Put("a", Blob('a', 64)).ok());
  ASSERT_TRUE(backend.Put("b", Blob('b', 65)).ok());

  NexusdOptions server_options;
  server_options.max_protocol_version = 2; // legacy daemon
  auto server = NexusdServer::Start(backend, server_options).value();

  auto remote = RemoteBackend::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  RemoteBackend& client = *remote.value();
  EXPECT_EQ(client.peer_version(), 2);

  // Batch ops degrade to lock-step singles: correct results, no kMultiGet
  // frame ever reaches the legacy server.
  const auto results = client.MultiGet({"a", "b", "missing"});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].value(), Blob('a', 64));
  EXPECT_EQ(results[1].value(), Blob('b', 65));
  EXPECT_EQ(results[2].status().code(), ErrorCode::kNotFound);
  const auto exists = client.MultiExists({"a", "missing"});
  ASSERT_EQ(exists.size(), 2u);
  EXPECT_TRUE(exists[0]);
  EXPECT_FALSE(exists[1]);

  for (const auto& row : server->WireStats().per_op) {
    EXPECT_LE(row.rpc, static_cast<std::uint8_t>(net::kMaxV2Rpc));
  }
  EXPECT_EQ(server->stats().protocol_errors, 0u);
  server->Stop();
}

TEST(NetMux, V2ClientInteroperatesWithV3Server) {
  storage::MemBackend backend;
  auto server = NexusdServer::Start(backend).value();

  RemoteBackendOptions options;
  options.max_protocol_version = 2; // legacy client
  auto remote = RemoteBackend::Connect("127.0.0.1", server->port(), options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  RemoteBackend& client = *remote.value();
  EXPECT_EQ(client.peer_version(), 2);

  ASSERT_TRUE(client.Put("k", Blob('k', 100)).ok());
  EXPECT_EQ(client.Get("k").value(), Blob('k', 100));
  const auto results = client.MultiGet({"k", "gone"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].value(), Blob('k', 100));
  EXPECT_EQ(results[1].status().code(), ErrorCode::kNotFound);

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const auto& row : stats.value().per_op) {
    EXPECT_LE(row.rpc, static_cast<std::uint8_t>(net::kMaxV2Rpc));
  }
  EXPECT_EQ(server->stats().protocol_errors, 0u);
  server->Stop();
}

TEST(NetMux, BatchOpsAppearInServerStats) {
  storage::MemBackend backend;
  ASSERT_TRUE(backend.Put("one", Blob('1', 32)).ok());
  ASSERT_TRUE(backend.Put("two", Blob('2', 33)).ok());
  auto server = NexusdServer::Start(backend).value();

  auto remote = RemoteBackend::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  RemoteBackend& client = *remote.value();
  ASSERT_EQ(client.peer_version(), net::kProtocolVersion);

  const auto results = client.MultiGet({"one", "two", "absent"});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].value(), Blob('1', 32));
  EXPECT_EQ(results[1].value(), Blob('2', 33));
  EXPECT_EQ(results[2].status().code(), ErrorCode::kNotFound);
  const auto exists = client.MultiExists({"one", "absent"});
  ASSERT_EQ(exists.size(), 2u);
  EXPECT_TRUE(exists[0]);
  EXPECT_FALSE(exists[1]);

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  std::uint64_t multiget_count = 0;
  std::uint64_t multiexists_count = 0;
  for (const auto& row : stats.value().per_op) {
    if (row.rpc == static_cast<std::uint8_t>(net::Rpc::kMultiGet)) {
      multiget_count = row.count;
    }
    if (row.rpc == static_cast<std::uint8_t>(net::Rpc::kMultiExists)) {
      multiexists_count = row.count;
    }
  }
  EXPECT_EQ(multiget_count, 1u);   // the whole fan-out was ONE frame
  EXPECT_EQ(multiexists_count, 1u);
  server->Stop();
}

// A raw v2 request must get a byte-for-byte v2 response head back — the
// server echoes the REQUEST's version so legacy decoders never see v3.
TEST(NetMux, ServerEchoesRequestHeadVersion) {
  storage::MemBackend backend;
  ASSERT_TRUE(backend.Put("obj", Blob('o', 16)).ok());
  auto server = NexusdServer::Start(backend).value();

  auto tcp = net::TcpTransport::Dial("127.0.0.1", server->port(), 2000, 2000);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  Writer v2_request = net::BeginRequest(net::Rpc::kGet, 7, 2);
  v2_request.Str("obj");
  ASSERT_TRUE(tcp.value()->SendFrame(v2_request.bytes()).ok());
  auto v2_response = tcp.value()->RecvFrame();
  ASSERT_TRUE(v2_response.ok());
  ASSERT_GE(v2_response.value().size(), 9u);
  EXPECT_EQ(v2_response.value()[0], 2); // v2 head in, v2 head out
  EXPECT_EQ(net::ResponseCorrelation(v2_response.value()), 7u);

  Writer v3_request = net::BeginRequest(net::Rpc::kGet, 8, 3);
  v3_request.Str("obj");
  ASSERT_TRUE(tcp.value()->SendFrame(v3_request.bytes()).ok());
  auto v3_response = tcp.value()->RecvFrame();
  ASSERT_TRUE(v3_response.ok());
  ASSERT_GE(v3_response.value().size(), 9u);
  EXPECT_EQ(v3_response.value()[0], 3);
  EXPECT_EQ(net::ResponseCorrelation(v3_response.value()), 8u);

  tcp.value()->Close();
  server->Stop();
}

} // namespace
} // namespace nexus
