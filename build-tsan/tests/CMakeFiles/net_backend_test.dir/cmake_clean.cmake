file(REMOVE_RECURSE
  "CMakeFiles/net_backend_test.dir/net_backend_test.cpp.o"
  "CMakeFiles/net_backend_test.dir/net_backend_test.cpp.o.d"
  "net_backend_test"
  "net_backend_test.pdb"
  "net_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
