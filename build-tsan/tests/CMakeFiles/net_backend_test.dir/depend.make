# Empty dependencies file for net_backend_test.
# This may be replaced when dependencies are built.
