# Empty compiler generated dependencies file for parallel_crypto_test.
# This may be replaced when dependencies are built.
