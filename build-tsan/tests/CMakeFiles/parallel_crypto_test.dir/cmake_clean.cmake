file(REMOVE_RECURSE
  "CMakeFiles/parallel_crypto_test.dir/parallel_crypto_test.cpp.o"
  "CMakeFiles/parallel_crypto_test.dir/parallel_crypto_test.cpp.o.d"
  "parallel_crypto_test"
  "parallel_crypto_test.pdb"
  "parallel_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
