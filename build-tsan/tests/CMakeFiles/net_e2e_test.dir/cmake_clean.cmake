file(REMOVE_RECURSE
  "CMakeFiles/net_e2e_test.dir/net_e2e_test.cpp.o"
  "CMakeFiles/net_e2e_test.dir/net_e2e_test.cpp.o.d"
  "net_e2e_test"
  "net_e2e_test.pdb"
  "net_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
