# Empty dependencies file for net_e2e_test.
# This may be replaced when dependencies are built.
