file(REMOVE_RECURSE
  "CMakeFiles/crash_consistency_test.dir/crash_consistency_test.cpp.o"
  "CMakeFiles/crash_consistency_test.dir/crash_consistency_test.cpp.o.d"
  "crash_consistency_test"
  "crash_consistency_test.pdb"
  "crash_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
