# Empty dependencies file for crash_consistency_test.
# This may be replaced when dependencies are built.
