# Empty dependencies file for cache_coherence_test.
# This may be replaced when dependencies are built.
