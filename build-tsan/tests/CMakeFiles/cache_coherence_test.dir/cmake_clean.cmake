file(REMOVE_RECURSE
  "CMakeFiles/cache_coherence_test.dir/cache_coherence_test.cpp.o"
  "CMakeFiles/cache_coherence_test.dir/cache_coherence_test.cpp.o.d"
  "cache_coherence_test"
  "cache_coherence_test.pdb"
  "cache_coherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
