file(REMOVE_RECURSE
  "CMakeFiles/pfs_exchange_test.dir/pfs_exchange_test.cpp.o"
  "CMakeFiles/pfs_exchange_test.dir/pfs_exchange_test.cpp.o.d"
  "pfs_exchange_test"
  "pfs_exchange_test.pdb"
  "pfs_exchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
