file(REMOVE_RECURSE
  "CMakeFiles/crypto_rng_test.dir/crypto_rng_test.cpp.o"
  "CMakeFiles/crypto_rng_test.dir/crypto_rng_test.cpp.o.d"
  "crypto_rng_test"
  "crypto_rng_test.pdb"
  "crypto_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
