# Empty dependencies file for crypto_rng_test.
# This may be replaced when dependencies are built.
