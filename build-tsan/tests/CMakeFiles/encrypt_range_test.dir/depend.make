# Empty dependencies file for encrypt_range_test.
# This may be replaced when dependencies are built.
