file(REMOVE_RECURSE
  "CMakeFiles/encrypt_range_test.dir/encrypt_range_test.cpp.o"
  "CMakeFiles/encrypt_range_test.dir/encrypt_range_test.cpp.o.d"
  "encrypt_range_test"
  "encrypt_range_test.pdb"
  "encrypt_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypt_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
