
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_mux_test.cpp" "tests/CMakeFiles/net_mux_test.dir/net_mux_test.cpp.o" "gcc" "tests/CMakeFiles/net_mux_test.dir/net_mux_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/nexus_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/nexus_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/nexus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/nexus_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/nexus_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/nexus_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
