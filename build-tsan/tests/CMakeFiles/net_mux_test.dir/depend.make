# Empty dependencies file for net_mux_test.
# This may be replaced when dependencies are built.
