file(REMOVE_RECURSE
  "CMakeFiles/net_mux_test.dir/net_mux_test.cpp.o"
  "CMakeFiles/net_mux_test.dir/net_mux_test.cpp.o.d"
  "net_mux_test"
  "net_mux_test.pdb"
  "net_mux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_mux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
