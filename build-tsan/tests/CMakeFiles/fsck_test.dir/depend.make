# Empty dependencies file for fsck_test.
# This may be replaced when dependencies are built.
