file(REMOVE_RECURSE
  "CMakeFiles/fsck_test.dir/fsck_test.cpp.o"
  "CMakeFiles/fsck_test.dir/fsck_test.cpp.o.d"
  "fsck_test"
  "fsck_test.pdb"
  "fsck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
