
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/enclave_fs_test.cpp" "tests/CMakeFiles/enclave_fs_test.dir/enclave_fs_test.cpp.o" "gcc" "tests/CMakeFiles/enclave_fs_test.dir/enclave_fs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/nexus_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/enclave/CMakeFiles/nexus_enclave.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sgx/CMakeFiles/nexus_sgx.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/journal/CMakeFiles/nexus_journal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/nexus_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/nexus_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/nexus_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/nexus_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/nexus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/nexus_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
