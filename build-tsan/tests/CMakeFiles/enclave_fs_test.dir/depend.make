# Empty dependencies file for enclave_fs_test.
# This may be replaced when dependencies are built.
