file(REMOVE_RECURSE
  "CMakeFiles/enclave_fs_test.dir/enclave_fs_test.cpp.o"
  "CMakeFiles/enclave_fs_test.dir/enclave_fs_test.cpp.o.d"
  "enclave_fs_test"
  "enclave_fs_test.pdb"
  "enclave_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
