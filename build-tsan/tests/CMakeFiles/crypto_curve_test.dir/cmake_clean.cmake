file(REMOVE_RECURSE
  "CMakeFiles/crypto_curve_test.dir/crypto_curve_test.cpp.o"
  "CMakeFiles/crypto_curve_test.dir/crypto_curve_test.cpp.o.d"
  "crypto_curve_test"
  "crypto_curve_test.pdb"
  "crypto_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
