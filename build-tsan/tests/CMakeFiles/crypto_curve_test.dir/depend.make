# Empty dependencies file for crypto_curve_test.
# This may be replaced when dependencies are built.
