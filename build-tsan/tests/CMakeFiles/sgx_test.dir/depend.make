# Empty dependencies file for sgx_test.
# This may be replaced when dependencies are built.
