file(REMOVE_RECURSE
  "CMakeFiles/sgx_test.dir/sgx_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx_test.cpp.o.d"
  "sgx_test"
  "sgx_test.pdb"
  "sgx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
