file(REMOVE_RECURSE
  "CMakeFiles/trace_histogram_test.dir/trace_histogram_test.cpp.o"
  "CMakeFiles/trace_histogram_test.dir/trace_histogram_test.cpp.o.d"
  "trace_histogram_test"
  "trace_histogram_test.pdb"
  "trace_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
