# Empty dependencies file for trace_histogram_test.
# This may be replaced when dependencies are built.
