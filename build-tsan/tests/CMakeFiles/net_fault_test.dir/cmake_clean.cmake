file(REMOVE_RECURSE
  "CMakeFiles/net_fault_test.dir/net_fault_test.cpp.o"
  "CMakeFiles/net_fault_test.dir/net_fault_test.cpp.o.d"
  "net_fault_test"
  "net_fault_test.pdb"
  "net_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
