# Empty dependencies file for net_fault_test.
# This may be replaced when dependencies are built.
