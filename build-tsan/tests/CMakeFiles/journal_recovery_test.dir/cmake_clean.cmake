file(REMOVE_RECURSE
  "CMakeFiles/journal_recovery_test.dir/journal_recovery_test.cpp.o"
  "CMakeFiles/journal_recovery_test.dir/journal_recovery_test.cpp.o.d"
  "journal_recovery_test"
  "journal_recovery_test.pdb"
  "journal_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
