# Empty dependencies file for journal_recovery_test.
# This may be replaced when dependencies are built.
