file(REMOVE_RECURSE
  "CMakeFiles/fs_edge_cases_test.dir/fs_edge_cases_test.cpp.o"
  "CMakeFiles/fs_edge_cases_test.dir/fs_edge_cases_test.cpp.o.d"
  "fs_edge_cases_test"
  "fs_edge_cases_test.pdb"
  "fs_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
