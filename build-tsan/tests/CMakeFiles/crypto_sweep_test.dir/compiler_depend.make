# Empty compiler generated dependencies file for crypto_sweep_test.
# This may be replaced when dependencies are built.
