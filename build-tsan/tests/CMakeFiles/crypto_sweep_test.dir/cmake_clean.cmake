file(REMOVE_RECURSE
  "CMakeFiles/crypto_sweep_test.dir/crypto_sweep_test.cpp.o"
  "CMakeFiles/crypto_sweep_test.dir/crypto_sweep_test.cpp.o.d"
  "crypto_sweep_test"
  "crypto_sweep_test.pdb"
  "crypto_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
