file(REMOVE_RECURSE
  "CMakeFiles/metadata_type_sweep_test.dir/metadata_type_sweep_test.cpp.o"
  "CMakeFiles/metadata_type_sweep_test.dir/metadata_type_sweep_test.cpp.o.d"
  "metadata_type_sweep_test"
  "metadata_type_sweep_test.pdb"
  "metadata_type_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_type_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
