# Empty compiler generated dependencies file for metadata_type_sweep_test.
# This may be replaced when dependencies are built.
