file(REMOVE_RECURSE
  "CMakeFiles/multiclient_stress_test.dir/multiclient_stress_test.cpp.o"
  "CMakeFiles/multiclient_stress_test.dir/multiclient_stress_test.cpp.o.d"
  "multiclient_stress_test"
  "multiclient_stress_test.pdb"
  "multiclient_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclient_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
