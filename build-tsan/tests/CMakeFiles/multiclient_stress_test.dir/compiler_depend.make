# Empty compiler generated dependencies file for multiclient_stress_test.
# This may be replaced when dependencies are built.
