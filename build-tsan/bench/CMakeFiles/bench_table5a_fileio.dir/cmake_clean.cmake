file(REMOVE_RECURSE
  "CMakeFiles/bench_table5a_fileio.dir/bench_table5a_fileio.cpp.o"
  "CMakeFiles/bench_table5a_fileio.dir/bench_table5a_fileio.cpp.o.d"
  "bench_table5a_fileio"
  "bench_table5a_fileio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5a_fileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
