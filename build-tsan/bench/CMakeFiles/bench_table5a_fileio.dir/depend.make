# Empty dependencies file for bench_table5a_fileio.
# This may be replaced when dependencies are built.
