# Empty compiler generated dependencies file for bench_table5b_dirops.
# This may be replaced when dependencies are built.
