file(REMOVE_RECURSE
  "CMakeFiles/bench_table5b_dirops.dir/bench_table5b_dirops.cpp.o"
  "CMakeFiles/bench_table5b_dirops.dir/bench_table5b_dirops.cpp.o.d"
  "bench_table5b_dirops"
  "bench_table5b_dirops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5b_dirops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
