file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_linuxapps.dir/bench_fig6_linuxapps.cpp.o"
  "CMakeFiles/bench_fig6_linuxapps.dir/bench_fig6_linuxapps.cpp.o.d"
  "bench_fig6_linuxapps"
  "bench_fig6_linuxapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_linuxapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
