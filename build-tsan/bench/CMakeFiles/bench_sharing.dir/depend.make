# Empty dependencies file for bench_sharing.
# This may be replaced when dependencies are built.
