file(REMOVE_RECURSE
  "CMakeFiles/bench_sharing.dir/bench_sharing.cpp.o"
  "CMakeFiles/bench_sharing.dir/bench_sharing.cpp.o.d"
  "bench_sharing"
  "bench_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
