# Empty dependencies file for bench_micro_enclave.
# This may be replaced when dependencies are built.
