file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_enclave.dir/bench_micro_enclave.cpp.o"
  "CMakeFiles/bench_micro_enclave.dir/bench_micro_enclave.cpp.o.d"
  "bench_micro_enclave"
  "bench_micro_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
