# Empty dependencies file for bench_fig5c_gitclone.
# This may be replaced when dependencies are built.
