file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_gitclone.dir/bench_fig5c_gitclone.cpp.o"
  "CMakeFiles/bench_fig5c_gitclone.dir/bench_fig5c_gitclone.cpp.o.d"
  "bench_fig5c_gitclone"
  "bench_fig5c_gitclone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_gitclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
