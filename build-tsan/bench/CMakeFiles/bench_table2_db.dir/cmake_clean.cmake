file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_db.dir/bench_table2_db.cpp.o"
  "CMakeFiles/bench_table2_db.dir/bench_table2_db.cpp.o.d"
  "bench_table2_db"
  "bench_table2_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
