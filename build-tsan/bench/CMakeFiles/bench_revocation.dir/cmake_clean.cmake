file(REMOVE_RECURSE
  "CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o"
  "CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o.d"
  "bench_revocation"
  "bench_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
