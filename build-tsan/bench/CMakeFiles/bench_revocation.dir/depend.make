# Empty dependencies file for bench_revocation.
# This may be replaced when dependencies are built.
