file(REMOVE_RECURSE
  "CMakeFiles/nexus_shell.dir/nexus_shell.cpp.o"
  "CMakeFiles/nexus_shell.dir/nexus_shell.cpp.o.d"
  "nexus_shell"
  "nexus_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
