# Empty dependencies file for nexus_shell.
# This may be replaced when dependencies are built.
