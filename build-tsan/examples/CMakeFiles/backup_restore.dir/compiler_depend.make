# Empty compiler generated dependencies file for backup_restore.
# This may be replaced when dependencies are built.
