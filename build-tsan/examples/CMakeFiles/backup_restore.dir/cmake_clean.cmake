file(REMOVE_RECURSE
  "CMakeFiles/backup_restore.dir/backup_restore.cpp.o"
  "CMakeFiles/backup_restore.dir/backup_restore.cpp.o.d"
  "backup_restore"
  "backup_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
