file(REMOVE_RECURSE
  "CMakeFiles/team_acl.dir/team_acl.cpp.o"
  "CMakeFiles/team_acl.dir/team_acl.cpp.o.d"
  "team_acl"
  "team_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
