# Empty dependencies file for team_acl.
# This may be replaced when dependencies are built.
