file(REMOVE_RECURSE
  "CMakeFiles/untrusted_server.dir/untrusted_server.cpp.o"
  "CMakeFiles/untrusted_server.dir/untrusted_server.cpp.o.d"
  "untrusted_server"
  "untrusted_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untrusted_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
