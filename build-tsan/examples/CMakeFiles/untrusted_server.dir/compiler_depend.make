# Empty compiler generated dependencies file for untrusted_server.
# This may be replaced when dependencies are built.
