# Empty dependencies file for untrusted_server.
# This may be replaced when dependencies are built.
