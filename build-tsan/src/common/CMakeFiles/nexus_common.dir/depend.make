# Empty dependencies file for nexus_common.
# This may be replaced when dependencies are built.
