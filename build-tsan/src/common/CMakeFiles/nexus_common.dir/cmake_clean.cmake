file(REMOVE_RECURSE
  "CMakeFiles/nexus_common.dir/base64.cpp.o"
  "CMakeFiles/nexus_common.dir/base64.cpp.o.d"
  "CMakeFiles/nexus_common.dir/hex.cpp.o"
  "CMakeFiles/nexus_common.dir/hex.cpp.o.d"
  "CMakeFiles/nexus_common.dir/log.cpp.o"
  "CMakeFiles/nexus_common.dir/log.cpp.o.d"
  "CMakeFiles/nexus_common.dir/result.cpp.o"
  "CMakeFiles/nexus_common.dir/result.cpp.o.d"
  "CMakeFiles/nexus_common.dir/serial.cpp.o"
  "CMakeFiles/nexus_common.dir/serial.cpp.o.d"
  "CMakeFiles/nexus_common.dir/uuid.cpp.o"
  "CMakeFiles/nexus_common.dir/uuid.cpp.o.d"
  "libnexus_common.a"
  "libnexus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
