file(REMOVE_RECURSE
  "libnexus_common.a"
)
