
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pure_crypto_fs.cpp" "src/baseline/CMakeFiles/nexus_baseline.dir/pure_crypto_fs.cpp.o" "gcc" "src/baseline/CMakeFiles/nexus_baseline.dir/pure_crypto_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/nexus_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/nexus_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/nexus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/nexus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
