file(REMOVE_RECURSE
  "libnexus_baseline.a"
)
