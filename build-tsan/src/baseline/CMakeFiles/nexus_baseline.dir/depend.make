# Empty dependencies file for nexus_baseline.
# This may be replaced when dependencies are built.
