file(REMOVE_RECURSE
  "CMakeFiles/nexus_baseline.dir/pure_crypto_fs.cpp.o"
  "CMakeFiles/nexus_baseline.dir/pure_crypto_fs.cpp.o.d"
  "libnexus_baseline.a"
  "libnexus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
