# Empty dependencies file for nexus_net.
# This may be replaced when dependencies are built.
