file(REMOVE_RECURSE
  "CMakeFiles/nexus_net.dir/fault.cpp.o"
  "CMakeFiles/nexus_net.dir/fault.cpp.o.d"
  "CMakeFiles/nexus_net.dir/mux.cpp.o"
  "CMakeFiles/nexus_net.dir/mux.cpp.o.d"
  "CMakeFiles/nexus_net.dir/net_counters.cpp.o"
  "CMakeFiles/nexus_net.dir/net_counters.cpp.o.d"
  "CMakeFiles/nexus_net.dir/remote_backend.cpp.o"
  "CMakeFiles/nexus_net.dir/remote_backend.cpp.o.d"
  "CMakeFiles/nexus_net.dir/server.cpp.o"
  "CMakeFiles/nexus_net.dir/server.cpp.o.d"
  "CMakeFiles/nexus_net.dir/transport.cpp.o"
  "CMakeFiles/nexus_net.dir/transport.cpp.o.d"
  "CMakeFiles/nexus_net.dir/wire.cpp.o"
  "CMakeFiles/nexus_net.dir/wire.cpp.o.d"
  "libnexus_net.a"
  "libnexus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
