file(REMOVE_RECURSE
  "libnexus_net.a"
)
