file(REMOVE_RECURSE
  "CMakeFiles/nexus-stat.dir/nexus_stat.cpp.o"
  "CMakeFiles/nexus-stat.dir/nexus_stat.cpp.o.d"
  "nexus-stat"
  "nexus-stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus-stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
