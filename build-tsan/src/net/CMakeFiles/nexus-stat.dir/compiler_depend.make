# Empty compiler generated dependencies file for nexus-stat.
# This may be replaced when dependencies are built.
