file(REMOVE_RECURSE
  "CMakeFiles/nexusd.dir/nexusd.cpp.o"
  "CMakeFiles/nexusd.dir/nexusd.cpp.o.d"
  "nexusd"
  "nexusd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexusd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
