# Empty compiler generated dependencies file for nexusd.
# This may be replaced when dependencies are built.
