file(REMOVE_RECURSE
  "CMakeFiles/nexus_storage.dir/afs.cpp.o"
  "CMakeFiles/nexus_storage.dir/afs.cpp.o.d"
  "CMakeFiles/nexus_storage.dir/backend.cpp.o"
  "CMakeFiles/nexus_storage.dir/backend.cpp.o.d"
  "libnexus_storage.a"
  "libnexus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
