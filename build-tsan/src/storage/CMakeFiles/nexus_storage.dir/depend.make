# Empty dependencies file for nexus_storage.
# This may be replaced when dependencies are built.
