file(REMOVE_RECURSE
  "libnexus_storage.a"
)
