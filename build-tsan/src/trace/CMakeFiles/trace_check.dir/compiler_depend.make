# Empty compiler generated dependencies file for trace_check.
# This may be replaced when dependencies are built.
