file(REMOVE_RECURSE
  "CMakeFiles/trace_check.dir/trace_check.cpp.o"
  "CMakeFiles/trace_check.dir/trace_check.cpp.o.d"
  "trace_check"
  "trace_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
