# Empty dependencies file for nexus_trace.
# This may be replaced when dependencies are built.
