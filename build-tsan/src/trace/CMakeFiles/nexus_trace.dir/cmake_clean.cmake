file(REMOVE_RECURSE
  "CMakeFiles/nexus_trace.dir/histogram.cpp.o"
  "CMakeFiles/nexus_trace.dir/histogram.cpp.o.d"
  "CMakeFiles/nexus_trace.dir/trace.cpp.o"
  "CMakeFiles/nexus_trace.dir/trace.cpp.o.d"
  "libnexus_trace.a"
  "libnexus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
