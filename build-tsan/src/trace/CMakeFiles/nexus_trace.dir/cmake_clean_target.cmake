file(REMOVE_RECURSE
  "libnexus_trace.a"
)
