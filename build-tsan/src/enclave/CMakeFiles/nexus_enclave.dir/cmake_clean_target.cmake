file(REMOVE_RECURSE
  "libnexus_enclave.a"
)
