# Empty dependencies file for nexus_enclave.
# This may be replaced when dependencies are built.
