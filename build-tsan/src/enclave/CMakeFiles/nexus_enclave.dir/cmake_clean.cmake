file(REMOVE_RECURSE
  "CMakeFiles/nexus_enclave.dir/metadata.cpp.o"
  "CMakeFiles/nexus_enclave.dir/metadata.cpp.o.d"
  "CMakeFiles/nexus_enclave.dir/metadata_codec.cpp.o"
  "CMakeFiles/nexus_enclave.dir/metadata_codec.cpp.o.d"
  "CMakeFiles/nexus_enclave.dir/nexus_enclave.cpp.o"
  "CMakeFiles/nexus_enclave.dir/nexus_enclave.cpp.o.d"
  "CMakeFiles/nexus_enclave.dir/nexus_enclave_sharing.cpp.o"
  "CMakeFiles/nexus_enclave.dir/nexus_enclave_sharing.cpp.o.d"
  "libnexus_enclave.a"
  "libnexus_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
