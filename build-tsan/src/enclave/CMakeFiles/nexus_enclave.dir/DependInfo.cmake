
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/metadata.cpp" "src/enclave/CMakeFiles/nexus_enclave.dir/metadata.cpp.o" "gcc" "src/enclave/CMakeFiles/nexus_enclave.dir/metadata.cpp.o.d"
  "/root/repo/src/enclave/metadata_codec.cpp" "src/enclave/CMakeFiles/nexus_enclave.dir/metadata_codec.cpp.o" "gcc" "src/enclave/CMakeFiles/nexus_enclave.dir/metadata_codec.cpp.o.d"
  "/root/repo/src/enclave/nexus_enclave.cpp" "src/enclave/CMakeFiles/nexus_enclave.dir/nexus_enclave.cpp.o" "gcc" "src/enclave/CMakeFiles/nexus_enclave.dir/nexus_enclave.cpp.o.d"
  "/root/repo/src/enclave/nexus_enclave_sharing.cpp" "src/enclave/CMakeFiles/nexus_enclave.dir/nexus_enclave_sharing.cpp.o" "gcc" "src/enclave/CMakeFiles/nexus_enclave.dir/nexus_enclave_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/nexus_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/nexus_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sgx/CMakeFiles/nexus_sgx.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/journal/CMakeFiles/nexus_journal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/nexus_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/nexus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
