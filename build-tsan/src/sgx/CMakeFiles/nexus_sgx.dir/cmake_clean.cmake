file(REMOVE_RECURSE
  "CMakeFiles/nexus_sgx.dir/attestation.cpp.o"
  "CMakeFiles/nexus_sgx.dir/attestation.cpp.o.d"
  "CMakeFiles/nexus_sgx.dir/enclave.cpp.o"
  "CMakeFiles/nexus_sgx.dir/enclave.cpp.o.d"
  "CMakeFiles/nexus_sgx.dir/measurement.cpp.o"
  "CMakeFiles/nexus_sgx.dir/measurement.cpp.o.d"
  "libnexus_sgx.a"
  "libnexus_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
