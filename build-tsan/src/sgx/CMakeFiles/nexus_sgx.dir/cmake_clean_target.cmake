file(REMOVE_RECURSE
  "libnexus_sgx.a"
)
