# Empty dependencies file for nexus_sgx.
# This may be replaced when dependencies are built.
