file(REMOVE_RECURSE
  "libnexus_cache.a"
)
