file(REMOVE_RECURSE
  "CMakeFiles/nexus_cache.dir/cache_counters.cpp.o"
  "CMakeFiles/nexus_cache.dir/cache_counters.cpp.o.d"
  "CMakeFiles/nexus_cache.dir/cached_backend.cpp.o"
  "CMakeFiles/nexus_cache.dir/cached_backend.cpp.o.d"
  "libnexus_cache.a"
  "libnexus_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
