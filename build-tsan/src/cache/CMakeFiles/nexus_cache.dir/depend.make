# Empty dependencies file for nexus_cache.
# This may be replaced when dependencies are built.
