
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_counters.cpp" "src/cache/CMakeFiles/nexus_cache.dir/cache_counters.cpp.o" "gcc" "src/cache/CMakeFiles/nexus_cache.dir/cache_counters.cpp.o.d"
  "/root/repo/src/cache/cached_backend.cpp" "src/cache/CMakeFiles/nexus_cache.dir/cached_backend.cpp.o" "gcc" "src/cache/CMakeFiles/nexus_cache.dir/cached_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/nexus_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/nexus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/nexus_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/nexus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
