file(REMOVE_RECURSE
  "CMakeFiles/nexus_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/nexus_parallel.dir/thread_pool.cpp.o.d"
  "libnexus_parallel.a"
  "libnexus_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
