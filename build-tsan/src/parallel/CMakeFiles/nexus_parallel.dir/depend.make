# Empty dependencies file for nexus_parallel.
# This may be replaced when dependencies are built.
