file(REMOVE_RECURSE
  "libnexus_parallel.a"
)
