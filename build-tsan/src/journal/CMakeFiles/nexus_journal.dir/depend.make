# Empty dependencies file for nexus_journal.
# This may be replaced when dependencies are built.
