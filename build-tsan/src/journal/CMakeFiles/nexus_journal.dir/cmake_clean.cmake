file(REMOVE_RECURSE
  "CMakeFiles/nexus_journal.dir/journal.cpp.o"
  "CMakeFiles/nexus_journal.dir/journal.cpp.o.d"
  "libnexus_journal.a"
  "libnexus_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
