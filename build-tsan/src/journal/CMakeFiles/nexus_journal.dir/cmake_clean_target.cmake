file(REMOVE_RECURSE
  "libnexus_journal.a"
)
