file(REMOVE_RECURSE
  "libnexus_core.a"
)
