# Empty dependencies file for nexus_core.
# This may be replaced when dependencies are built.
