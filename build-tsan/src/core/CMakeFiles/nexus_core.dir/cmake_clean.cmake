file(REMOVE_RECURSE
  "CMakeFiles/nexus_core.dir/fsck.cpp.o"
  "CMakeFiles/nexus_core.dir/fsck.cpp.o.d"
  "CMakeFiles/nexus_core.dir/metadata_store.cpp.o"
  "CMakeFiles/nexus_core.dir/metadata_store.cpp.o.d"
  "CMakeFiles/nexus_core.dir/nexus_client.cpp.o"
  "CMakeFiles/nexus_core.dir/nexus_client.cpp.o.d"
  "libnexus_core.a"
  "libnexus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
