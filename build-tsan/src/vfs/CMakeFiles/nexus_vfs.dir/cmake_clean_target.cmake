file(REMOVE_RECURSE
  "libnexus_vfs.a"
)
