# Empty compiler generated dependencies file for nexus_vfs.
# This may be replaced when dependencies are built.
