file(REMOVE_RECURSE
  "CMakeFiles/nexus_vfs.dir/afs_passthrough_fs.cpp.o"
  "CMakeFiles/nexus_vfs.dir/afs_passthrough_fs.cpp.o.d"
  "CMakeFiles/nexus_vfs.dir/nexus_fs.cpp.o"
  "CMakeFiles/nexus_vfs.dir/nexus_fs.cpp.o.d"
  "CMakeFiles/nexus_vfs.dir/vfs.cpp.o"
  "CMakeFiles/nexus_vfs.dir/vfs.cpp.o.d"
  "libnexus_vfs.a"
  "libnexus_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
