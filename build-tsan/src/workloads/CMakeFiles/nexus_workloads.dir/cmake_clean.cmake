file(REMOVE_RECURSE
  "CMakeFiles/nexus_workloads.dir/fsutils.cpp.o"
  "CMakeFiles/nexus_workloads.dir/fsutils.cpp.o.d"
  "CMakeFiles/nexus_workloads.dir/minikv.cpp.o"
  "CMakeFiles/nexus_workloads.dir/minikv.cpp.o.d"
  "CMakeFiles/nexus_workloads.dir/minisql.cpp.o"
  "CMakeFiles/nexus_workloads.dir/minisql.cpp.o.d"
  "CMakeFiles/nexus_workloads.dir/treegen.cpp.o"
  "CMakeFiles/nexus_workloads.dir/treegen.cpp.o.d"
  "libnexus_workloads.a"
  "libnexus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
