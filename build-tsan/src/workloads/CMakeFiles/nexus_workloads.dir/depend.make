# Empty dependencies file for nexus_workloads.
# This may be replaced when dependencies are built.
