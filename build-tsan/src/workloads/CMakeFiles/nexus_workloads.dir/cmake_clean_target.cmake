file(REMOVE_RECURSE
  "libnexus_workloads.a"
)
