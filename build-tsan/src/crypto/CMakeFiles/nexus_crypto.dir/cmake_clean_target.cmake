file(REMOVE_RECURSE
  "libnexus_crypto.a"
)
