# Empty dependencies file for nexus_crypto.
# This may be replaced when dependencies are built.
