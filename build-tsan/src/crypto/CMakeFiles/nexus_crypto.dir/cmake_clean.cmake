file(REMOVE_RECURSE
  "CMakeFiles/nexus_crypto.dir/aes.cpp.o"
  "CMakeFiles/nexus_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/aesni.cpp.o"
  "CMakeFiles/nexus_crypto.dir/aesni.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/nexus_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/fe25519.cpp.o"
  "CMakeFiles/nexus_crypto.dir/fe25519.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/gcm.cpp.o"
  "CMakeFiles/nexus_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/gcm_siv.cpp.o"
  "CMakeFiles/nexus_crypto.dir/gcm_siv.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/hmac.cpp.o"
  "CMakeFiles/nexus_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/rng.cpp.o"
  "CMakeFiles/nexus_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/sha256.cpp.o"
  "CMakeFiles/nexus_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/sha512.cpp.o"
  "CMakeFiles/nexus_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/nexus_crypto.dir/x25519.cpp.o"
  "CMakeFiles/nexus_crypto.dir/x25519.cpp.o.d"
  "libnexus_crypto.a"
  "libnexus_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexus_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
