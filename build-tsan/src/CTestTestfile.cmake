# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("trace")
subdirs("parallel")
subdirs("crypto")
subdirs("sgx")
subdirs("journal")
subdirs("storage")
subdirs("cache")
subdirs("net")
subdirs("enclave")
subdirs("core")
subdirs("vfs")
subdirs("baseline")
subdirs("workloads")
